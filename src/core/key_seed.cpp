#include "core/key_seed.hpp"

#include <cmath>
#include <stdexcept>

#include "numeric/stats.hpp"

namespace wavekey::core {

BitVec make_key_seed(const std::vector<double>& features, const SeedQuantizer& quantizer) {
  return quantizer.quantize(features);
}

std::vector<double> seed_mismatch_ratios(EncoderPair& encoders, const WaveKeyDataset& dataset,
                                         const SeedQuantizer& quantizer) {
  std::vector<double> ratios;
  ratios.reserve(dataset.size());
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const Sample& s = dataset.sample(i);
    const BitVec seed_m = make_key_seed(encoders.imu_features(s.imu), quantizer);
    const BitVec seed_r = make_key_seed(encoders.rfid_features(s.rfid), quantizer);
    ratios.push_back(seed_m.mismatch_ratio(seed_r));
  }
  return ratios;
}

EtaCalibration calibrate_eta(EncoderPair& encoders, const WaveKeyDataset& dataset,
                             const SeedQuantizer& quantizer, double eta_security_cap) {
  const std::vector<double> ratios = seed_mismatch_ratios(encoders, dataset, quantizer);
  if (ratios.empty()) throw std::invalid_argument("calibrate_eta: empty dataset");
  EtaCalibration cal;
  cal.samples = ratios.size();
  cal.mean_mismatch = mean(ratios);
  cal.p99_mismatch = percentile(ratios, 99.0);
  // Floor: at least one correctable seed bit, so benign quantization noise
  // on a single boundary never kills the session.
  const double floor_eta = 1.0 / static_cast<double>(quantizer.seed_bits());
  cal.eta = std::max(cal.p99_mismatch, floor_eta);
  if (cal.eta > eta_security_cap) {
    cal.eta = std::max(eta_security_cap, floor_eta);
    cal.capped = true;
  }
  return cal;
}

double random_guess_success_rate(std::size_t seed_bits, double eta) {
  const auto max_errors = static_cast<std::size_t>(std::floor(eta * static_cast<double>(seed_bits)));
  // Sum of binomial coefficients in log space to survive large l_s.
  double total = 0.0;
  double log_c = 0.0;  // log C(n, 0)
  for (std::size_t i = 0; i <= max_errors; ++i) {
    if (i > 0)
      log_c += std::log(static_cast<double>(seed_bits - i + 1)) - std::log(static_cast<double>(i));
    total += std::exp(log_c - static_cast<double>(seed_bits) * std::log(2.0));
  }
  return total;
}

}  // namespace wavekey::core
