#pragma once

// Key-seed generation (SIV-C): quantize the latent feature vector with
// equal-probability standard-normal bins and Gray-encode the bin indices.
// Also hosts the eta calibration procedure of SVI-C2: eta is set at the
// 99th percentile of the observed seed bit-mismatch distribution so that
// >= 99% of benign sessions reconcile.

#include <vector>

#include "core/config.hpp"
#include "core/dataset.hpp"
#include "core/encoders.hpp"
#include "core/seed_quantizer.hpp"
#include "numeric/bitvec.hpp"

namespace wavekey::core {

/// Quantizes a latent feature vector into the l_s-bit key-seed.
BitVec make_key_seed(const std::vector<double>& features, const SeedQuantizer& quantizer);

/// Seed bit-mismatch ratios between f_M and f_R over a dataset.
std::vector<double> seed_mismatch_ratios(EncoderPair& encoders, const WaveKeyDataset& dataset,
                                         const SeedQuantizer& quantizer);

struct EtaCalibration {
  double eta = 0.0;               ///< chosen error-correction rate
  double mean_mismatch = 0.0;     ///< dataset mean seed mismatch
  double p99_mismatch = 0.0;      ///< 99th percentile (eta is set here)
  bool capped = false;            ///< p99 exceeded the security cap
  std::size_t samples = 0;
};

/// Runs the calibration on a dataset: eta = 99th percentile of mismatch,
/// with a floor of one correctable seed bit and a ceiling of
/// `eta_security_cap` (the paper's random-guess security level takes
/// precedence over benign success when the two conflict).
EtaCalibration calibrate_eta(EncoderPair& encoders, const WaveKeyDataset& dataset,
                             const SeedQuantizer& quantizer, double eta_security_cap = 0.25);

/// Eq. (4): success probability of a random-guess device-spoofing attack,
///   P_g = sum_{i=0}^{floor(l_s * eta)} C(l_s, i) / 2^{l_s}.
double random_guess_success_rate(std::size_t seed_bits, double eta);

}  // namespace wavekey::core
