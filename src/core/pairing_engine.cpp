#include "core/pairing_engine.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <future>
#include <mutex>
#include <random>
#include <thread>

#include "core/batched_encoder.hpp"
#include "crypto/drbg.hpp"
#include "numeric/rng.hpp"
#include "runtime/bounded_queue.hpp"
#include "runtime/thread_pool.hpp"

namespace wavekey::core {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct Job {
  PairingRequest request;
  Clock::time_point enqueued;
};

}  // namespace

struct PairingEngine::Impl {
  const SeedQuantizer& quantizer;
  PairingEngineConfig config;
  runtime::BoundedQueue<Job> queue;
  runtime::ThreadPool pool;
  std::vector<std::future<void>> drainers;
  std::mutex reports_mutex;
  std::vector<PairingReport> reports;
  bool finished = false;

  Impl(const SeedQuantizer& q, const PairingEngineConfig& c)
      : quantizer(q),
        config(c),
        queue(c.queue_capacity),
        pool(std::max<std::size_t>(c.threads, 1)) {
    // The protocol's seed length must match what the quantizer emits.
    config.session.params.seed_bits = quantizer.seed_bits();
    // One drainer per worker thread: each loops over the admission queue
    // until it is closed and drained, so the pool never idles while jobs
    // are pending and blocking radio waits overlap across sessions.
    for (std::size_t t = 0; t < pool.size(); ++t)
      drainers.push_back(pool.submit([this] {
        while (auto job = queue.pop()) service(std::move(*job));
      }));
  }

  void service(Job&& job) {
    const Clock::time_point start = Clock::now();
    PairingReport report;
    report.id = job.request.id;
    report.queue_wait_s = std::chrono::duration<double>(start - job.enqueued).count();
    try {
      protocol::SessionConfig session = config.session;

      std::vector<double> mobile_latent = std::move(job.request.mobile_latent);
      std::vector<double> server_latent = std::move(job.request.server_latent);
      if (config.encoder_service != nullptr && job.request.imu_input.size() > 0 &&
          job.request.rf_input.size() > 0) {
        // Cross-session batched encode: this worker parks in the coalescing
        // stage until its batch dispatches. Both the hold time and this
        // session's 1/B share of the batched forwards are charged into the
        // virtual session clock — batching amortizes compute but never
        // hides latency from the tau budget (DESIGN.md §11.2).
        const EncodedLatents enc =
            config.encoder_service->encode(job.request.imu_input, job.request.rf_input);
        mobile_latent = enc.mobile;
        server_latent = enc.server;
        if (config.synthetic_residual_sigma >= 0.0) {
          Rng noise_rng(job.request.rng_seed ^ 0x51D0BA7C4ull);
          std::normal_distribution<double> gauss(0.0, config.synthetic_residual_sigma);
          server_latent = mobile_latent;
          for (double& v : server_latent) v += gauss(noise_rng);
        }
        session.mobile_compute_s += enc.hold_s + enc.imu_forward_s;
        session.server_compute_s += enc.rf_forward_s;
        report.encode_hold_s = enc.hold_s;
        report.encode_s = enc.imu_forward_s + enc.rf_forward_s;
        report.encode_batch = enc.batch_size;
      }

      // Quantization is real per-session compute: charge its measured
      // wall-clock cost into the virtual session clock so contention between
      // concurrent sessions counts against the tau window.
      const Clock::time_point q0 = Clock::now();
      const BitVec mobile_seed = quantizer.quantize(mobile_latent);
      const double mobile_quant_s = seconds_since(q0);
      const Clock::time_point q1 = Clock::now();
      const BitVec server_seed = quantizer.quantize(server_latent);
      const double server_quant_s = seconds_since(q1);

      session.mobile_compute_s += mobile_quant_s;
      session.server_compute_s += server_quant_s;

      // Blocking radio I/O emulation: the exchange spends real time waiting
      // on the air interface (BLE connection intervals). Sleeping releases
      // this worker's CPU so other sessions' compute proceeds underneath.
      if (config.radio_wait_s > 0.0)
        std::this_thread::sleep_for(std::chrono::duration<double>(config.radio_wait_s));

      crypto::Drbg mobile_rng(job.request.rng_seed ^ 0xAB1Eull);
      crypto::Drbg server_rng(job.request.rng_seed ^ 0x5E44ull);
      const protocol::SessionResult result = protocol::run_key_agreement(
          session, mobile_seed, server_seed, mobile_rng, server_rng);

      report.success = result.success;
      report.failure = result.failure;
      report.key = result.mobile_key;
      report.elapsed_s = result.elapsed_s;
      report.critical_latency_s = result.critical_arrival_s - session.gesture_window_s;
      report.tau_violation = result.success && report.critical_latency_s > session.tau_s;
      if (report.success && config.on_established)
        config.on_established(report.id, report.key);
    } catch (const std::exception& e) {
      report.success = false;
      report.failure = protocol::FailureReason::kMalformedMessage;
      report.error = e.what();
    }
    report.service_s = seconds_since(start);
    std::lock_guard<std::mutex> lock(reports_mutex);
    reports.push_back(std::move(report));
  }

  std::vector<PairingReport> finish() {
    if (!finished) {
      finished = true;
      queue.close();
      for (auto& f : drainers) f.get();
      drainers.clear();
    }
    std::lock_guard<std::mutex> lock(reports_mutex);
    std::vector<PairingReport> out = reports;
    std::sort(out.begin(), out.end(),
              [](const PairingReport& a, const PairingReport& b) { return a.id < b.id; });
    return out;
  }
};

PairingEngine::PairingEngine(const SeedQuantizer& quantizer, const PairingEngineConfig& config)
    : impl_(new Impl(quantizer, config)) {}

PairingEngine::~PairingEngine() {
  impl_->finish();  // close + drain before the pool is torn down
  delete impl_;
}

bool PairingEngine::submit(PairingRequest request) {
  return impl_->queue.push({std::move(request), Clock::now()});
}

std::vector<PairingReport> PairingEngine::finish() { return impl_->finish(); }

std::size_t PairingEngine::threads() const { return impl_->pool.size(); }

}  // namespace wavekey::core
