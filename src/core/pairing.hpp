#pragma once

// Session-level helper: simulates one key-establishment gesture under a
// scenario, runs both real pipelines, extracts the latents with a trained
// encoder pair, and produces the two key-seeds. This is the common
// front half of live key establishment (core/session) and of every
// evaluation bench (Tables I/II, Fig. 7, SVI-E/F).

#include <cstdint>
#include <optional>

#include "core/config.hpp"
#include "core/encoders.hpp"
#include "core/seed_quantizer.hpp"
#include "numeric/bitvec.hpp"
#include "sim/scenario.hpp"

namespace wavekey::core {

struct SeedPairResult {
  BitVec mobile_seed;   ///< S_M from the IMU pipeline + IMU-En
  BitVec server_seed;   ///< S_R from the RFID pipeline + RF-En
  double mismatch = 0;  ///< bit mismatch ratio between the two
  double imu_start = 0; ///< detected gesture start (mobile clock)
  double rfid_start = 0;///< detected gesture start (server clock)
};

/// Simulates one session and produces the two seeds. Returns nullopt when a
/// pipeline rejects the recording (no gesture detected / window truncated).
std::optional<SeedPairResult> simulate_seed_pair(EncoderPair& encoders,
                                                 const SeedQuantizer& quantizer,
                                                 const WaveKeyConfig& config,
                                                 const sim::ScenarioConfig& scenario,
                                                 std::uint64_t seed);

}  // namespace wavekey::core
