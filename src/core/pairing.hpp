#pragma once

// Session-level helper: simulates one key-establishment gesture under a
// scenario, runs both real pipelines, extracts the latents with a trained
// encoder pair, and produces the two key-seeds. This is the common
// front half of live key establishment (core/session) and of every
// evaluation bench (Tables I/II, Fig. 7, SVI-E/F).

#include <cstdint>
#include <optional>

#include "core/config.hpp"
#include "core/encoders.hpp"
#include "core/seed_quantizer.hpp"
#include "numeric/bitvec.hpp"
#include "sim/scenario.hpp"

namespace wavekey::core {

class BatchedEncoderService;

struct SeedPairResult {
  BitVec mobile_seed;   ///< S_M from the IMU pipeline + IMU-En
  BitVec server_seed;   ///< S_R from the RFID pipeline + RF-En
  double mismatch = 0;  ///< bit mismatch ratio between the two
  double imu_start = 0; ///< detected gesture start (mobile clock)
  double rfid_start = 0;///< detected gesture start (server clock)
  /// Batched-encode accounting; all zero on the serial path (no service).
  double encode_hold_s = 0.0;   ///< coalescing-stage hold
  double imu_encode_s = 0.0;    ///< 1/B share of the batched IMU forward
  double rf_encode_s = 0.0;     ///< 1/B share of the batched RF forward
  std::size_t encode_batch = 0; ///< coalesced batch size (0 = serial path)
};

/// Simulates one session and produces the two seeds. Returns nullopt when a
/// pipeline rejects the recording (no gesture detected / window truncated).
/// When `service` is non-null the latents come from the cross-session
/// batched encoder stage (the call may block up to its max_hold deadline
/// waiting for co-batched sessions; the hold is reported in the result so
/// callers can charge it to the session clock). nullptr keeps the serial
/// per-sample path — the default, and the determinism anchor.
std::optional<SeedPairResult> simulate_seed_pair(EncoderPair& encoders,
                                                 const SeedQuantizer& quantizer,
                                                 const WaveKeyConfig& config,
                                                 const sim::ScenarioConfig& scenario,
                                                 std::uint64_t seed,
                                                 BatchedEncoderService* service = nullptr);

}  // namespace wavekey::core
