#include "core/seed_quantizer.hpp"

#include <algorithm>
#include <bit>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "dsp/gray_code.hpp"
#include "nn/layer.hpp"
#include "numeric/stats.hpp"

namespace wavekey::core {

SeedQuantizer SeedQuantizer::from_normal(const WaveKeyConfig& config) {
  SeedQuantizer q;
  q.num_bins_ = config.quant_bins;
  q.bits_per_element_ = config.bits_per_element();
  std::vector<double> bounds;
  for (std::size_t i = 1; i < q.num_bins_; ++i)
    bounds.push_back(normal_quantile(static_cast<double>(i) / static_cast<double>(q.num_bins_)));
  q.boundaries_.assign(config.latent_dim, bounds);
  return q;
}

SeedQuantizer SeedQuantizer::from_pooled(std::vector<std::vector<double>> pooled,
                                         std::size_t num_bins) {
  if (num_bins < 2) throw std::invalid_argument("SeedQuantizer::from_pooled: need >= 2 bins");
  if (pooled.empty() || pooled.front().size() < num_bins * 4)
    throw std::invalid_argument("SeedQuantizer::from_pooled: pool too small");
  SeedQuantizer q;
  q.num_bins_ = num_bins;
  q.bits_per_element_ = static_cast<std::size_t>(std::bit_width(num_bins - 1));
  q.boundaries_.resize(pooled.size());
  for (std::size_t d = 0; d < pooled.size(); ++d) {
    for (std::size_t i = 1; i < q.num_bins_; ++i) {
      const double p = 100.0 * static_cast<double>(i) / static_cast<double>(q.num_bins_);
      q.boundaries_[d].push_back(percentile(pooled[d], p));
    }
  }
  return q;
}

SeedQuantizer SeedQuantizer::calibrated(EncoderPair& encoders, const WaveKeyDataset& dataset,
                                        const WaveKeyConfig& config) {
  if (dataset.size() < config.quant_bins * 4)
    throw std::invalid_argument("SeedQuantizer::calibrated: dataset too small");
  const std::size_t dim = encoders.latent_dim();
  std::vector<std::vector<double>> pooled(dim);
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const Sample& s = dataset.sample(i);
    const auto fm = encoders.imu_features(s.imu);
    const auto fr = encoders.rfid_features(s.rfid);
    for (std::size_t d = 0; d < dim; ++d) {
      pooled[d].push_back(fm[d]);
      pooled[d].push_back(fr[d]);
    }
  }
  return from_pooled(std::move(pooled), config.quant_bins);
}

std::size_t SeedQuantizer::bin_of(std::size_t dim, double x) const {
  const auto& b = boundaries_.at(dim);
  return static_cast<std::size_t>(std::upper_bound(b.begin(), b.end(), x) - b.begin());
}

BitVec SeedQuantizer::quantize(const std::vector<double>& features) const {
  if (features.size() != boundaries_.size())
    throw std::invalid_argument("SeedQuantizer::quantize: feature length mismatch");
  BitVec seed;
  for (std::size_t d = 0; d < features.size(); ++d) {
    const auto bin = static_cast<std::uint32_t>(bin_of(d, features[d]));
    seed.append(dsp::gray_bits(bin, bits_per_element_));
  }
  return seed;
}

void SeedQuantizer::save(std::ostream& os) const {
  nn::write_u64(os, num_bins_);
  nn::write_u64(os, boundaries_.size());
  for (const auto& b : boundaries_) {
    std::vector<float> floats(b.begin(), b.end());
    nn::write_floats(os, floats);
  }
}

SeedQuantizer SeedQuantizer::load(std::istream& is) {
  SeedQuantizer q;
  q.num_bins_ = nn::read_u64(is);
  if (q.num_bins_ < 2 || q.num_bins_ > 1024) throw std::runtime_error("SeedQuantizer: bad bins");
  q.bits_per_element_ = static_cast<std::size_t>(std::bit_width(q.num_bins_ - 1));
  const std::uint64_t dim = nn::read_u64(is);
  q.boundaries_.resize(dim);
  for (auto& b : q.boundaries_) {
    std::vector<float> floats(q.num_bins_ - 1);
    nn::read_floats(is, floats);
    b.assign(floats.begin(), floats.end());
  }
  return q;
}

}  // namespace wavekey::core
