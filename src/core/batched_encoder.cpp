#include "core/batched_encoder.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

namespace wavekey::core {

namespace {
using Clock = std::chrono::steady_clock;
}

BatchedEncoderService::BatchedEncoderService(EncoderPair& encoders,
                                             const BatchedEncoderConfig& config)
    : config_(config),
      imu_infer_(encoders.imu_encoder(), config.imu_channels, config.imu_length),
      rf_infer_(encoders.rfid_encoder(), config.rf_channels, config.rf_length),
      batcher_({config.max_batch, config.max_hold_s},
               [this](std::vector<Item>& items) { return flush(items); }) {}

BatchedEncoderService::~BatchedEncoderService() { close(); }

std::vector<BatchedEncoderService::Out> BatchedEncoderService::flush(std::vector<Item>& items) {
  // The MicroBatcher may have batch k+1 ready while batch k still flushes;
  // the Sequentials are externally synchronized, so serialize here.
  std::lock_guard<std::mutex> lock(flush_mutex_);
  const std::size_t b = items.size();
  std::vector<const nn::Tensor*> imu_ptrs(b), rf_ptrs(b);
  for (std::size_t s = 0; s < b; ++s) {
    imu_ptrs[s] = items[s].imu;
    rf_ptrs[s] = items[s].rf;
  }

  const Clock::time_point t0 = Clock::now();
  const nn::Tensor imu_lat =
      imu_infer_.forward(std::span<const nn::Tensor* const>(imu_ptrs.data(), b));
  const Clock::time_point t1 = Clock::now();
  const nn::Tensor rf_lat =
      rf_infer_.forward(std::span<const nn::Tensor* const>(rf_ptrs.data(), b));
  const Clock::time_point t2 = Clock::now();

  // Every co-batched session is charged an equal 1/B share of the measured
  // batched forward wall time (the whole point of coalescing: the shares
  // shrink as B grows, and they land on the virtual session clock).
  const double imu_share = std::chrono::duration<double>(t1 - t0).count() / b;
  const double rf_share = std::chrono::duration<double>(t2 - t1).count() / b;

  const std::size_t d_imu = imu_infer_.out_features();
  const std::size_t d_rf = rf_infer_.out_features();
  std::vector<Out> outs(b);
  for (std::size_t s = 0; s < b; ++s) {
    Out& o = outs[s];
    o.mobile.resize(d_imu);
    o.server.resize(d_rf);
    for (std::size_t f = 0; f < d_imu; ++f) o.mobile[f] = imu_lat.raw()[s * d_imu + f];
    for (std::size_t f = 0; f < d_rf; ++f) o.server[f] = rf_lat.raw()[s * d_rf + f];
    o.imu_s = imu_share;
    o.rf_s = rf_share;
  }
  return outs;
}

EncodedLatents BatchedEncoderService::encode(const nn::Tensor& imu, const nn::Tensor& rf) {
  if (imu.size() != config_.imu_channels * config_.imu_length)
    throw std::invalid_argument("BatchedEncoderService::encode: IMU shape mismatch");
  if (rf.size() != config_.rf_channels * config_.rf_length)
    throw std::invalid_argument("BatchedEncoderService::encode: RF shape mismatch");

  auto ticket = batcher_.submit(Item{&imu, &rf});
  if (!ticket) throw std::runtime_error("BatchedEncoderService::encode: service closed");

  EncodedLatents out;
  out.mobile = std::move(ticket->value.mobile);
  out.server = std::move(ticket->value.server);
  out.hold_s = ticket->hold_s;
  out.imu_forward_s = ticket->value.imu_s;
  out.rf_forward_s = ticket->value.rf_s;
  out.batch_size = ticket->batch_size;
  out.deadline_dispatch = ticket->deadline_dispatch;
  return out;
}

void BatchedEncoderService::close() { batcher_.close(); }

}  // namespace wavekey::core
