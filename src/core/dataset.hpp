#pragma once

// Training-dataset generation mirroring SIV-E1 of the paper: a cohort of
// simulated volunteers performs long gestures with several mobile devices
// across static and dynamic environments; each gesture contributes multiple
// overlapping 2 s windows; every window is pushed through the *real* mobile
// and server pipelines to produce a paired sample <A_i, R_i>.

#include <cstdint>
#include <vector>

#include "core/config.hpp"
#include "nn/tensor.hpp"
#include "numeric/matrix.hpp"

namespace wavekey::core {

/// One paired training sample.
struct Sample {
  nn::Tensor imu;       ///< [3, 200]: linear accelerations, channels-first
  nn::Tensor rfid;      ///< [2, 400]: processed phase + magnitude
  nn::Tensor rfid_mag;  ///< [400]: the decoder's reconstruction target
};

/// Scale of the simulated data-collection campaign. The paper's campaign is
/// volunteers=6, devices=4, gestures=30, windows=20 (14,400 samples); the
/// defaults below are a compute-friendly slice with the same diversity.
struct DatasetConfig {
  std::size_t volunteers = 6;
  std::size_t devices = 4;
  std::size_t gestures_per_pair = 4;  ///< gestures per (volunteer, device)
  std::size_t windows_per_gesture = 8;
  double gesture_active_s = 15.0;
  bool include_dynamic = true;  ///< 1/3 of gestures in a dynamic environment
  std::uint64_t seed = 0x5EED;
};

class WaveKeyDataset {
 public:
  /// Runs the simulated campaign. Windows whose pipelines fail (no detected
  /// start etc.) are skipped, as a real campaign would discard bad trials.
  static WaveKeyDataset generate(const DatasetConfig& dataset_config,
                                 const WaveKeyConfig& wavekey_config = {});

  std::size_t size() const { return samples_.size(); }
  const Sample& sample(std::size_t i) const { return samples_.at(i); }
  const std::vector<Sample>& samples() const { return samples_; }

  /// Assembles minibatch tensors from sample indices.
  void batch(const std::vector<std::size_t>& indices, nn::Tensor& imu, nn::Tensor& rfid,
             nn::Tensor& mag) const;

  /// Converts a pipeline output pair into network input tensors (shared by
  /// dataset generation and live key establishment).
  static Sample make_sample(const Matrix& linear_accel, const Matrix& rfid_processed,
                            const WaveKeyConfig& config);

  void add(Sample s) { samples_.push_back(std::move(s)); }

 private:
  std::vector<Sample> samples_;
};

}  // namespace wavekey::core
