#pragma once

// The top-level WaveKey public API: one object owning the trained encoder
// pair and the scheme hyperparameters, able to run complete simulated
// key-establishment sessions (data acquisition -> key-seed generation ->
// OT key agreement, Fig. 2 of the paper) and exposing the calibration
// procedure that fixes eta.

#include <cstdint>
#include <optional>

#include "core/config.hpp"
#include "core/encoders.hpp"
#include "core/key_seed.hpp"
#include "core/pairing.hpp"
#include "core/seed_quantizer.hpp"
#include "protocol/session.hpp"
#include "sim/scenario.hpp"

namespace wavekey::core {

/// Outcome of one full key-establishment session.
struct WaveKeyOutcome {
  bool success = false;
  protocol::FailureReason failure = protocol::FailureReason::kNone;
  BitVec key;                ///< the established l_k-bit key (on success)
  double seed_mismatch = 1.0;///< S_M vs S_R bit mismatch of this session
  double elapsed_s = 0.0;    ///< gesture start -> key established
  bool pipelines_ok = false; ///< both sides produced a seed
};

class WaveKeySystem {
 public:
  /// Takes ownership of a trained encoder pair. The quantizer defaults to
  /// the paper's standard-normal layout; call calibrate() to switch to the
  /// empirical-quantile layout and fix eta.
  WaveKeySystem(EncoderPair encoders, WaveKeyConfig config);

  const WaveKeyConfig& config() const { return config_; }
  WaveKeyConfig& config() { return config_; }
  EncoderPair& encoders() { return encoders_; }
  const SeedQuantizer& quantizer() const { return quantizer_; }
  void set_quantizer(SeedQuantizer q) { quantizer_ = std::move(q); }

  /// Calibrates the quantizer bins (empirical quantiles) and eta on a
  /// dataset (SVI-C2); stores both in the system.
  EtaCalibration calibrate(const WaveKeyDataset& dataset);

  /// Runs one complete simulated session: gesture + sensors + pipelines +
  /// encoders + the full OT key agreement over the simulated link.
  /// `interceptor` optionally interposes an adversary on the channel.
  WaveKeyOutcome establish_key(const sim::ScenarioConfig& scenario, std::uint64_t seed,
                               const protocol::Interceptor& interceptor = {});

  /// Protocol parameters implied by the current config.
  protocol::AgreementParams agreement_params() const;

 private:
  EncoderPair encoders_;
  WaveKeyConfig config_;
  SeedQuantizer quantizer_;
};

}  // namespace wavekey::core
