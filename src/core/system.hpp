#pragma once

// The top-level WaveKey public API: one object owning the trained encoder
// pair and the scheme hyperparameters, able to run complete simulated
// key-establishment sessions (data acquisition -> key-seed generation ->
// OT key agreement, Fig. 2 of the paper) and exposing the calibration
// procedure that fixes eta.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/config.hpp"
#include "core/encoders.hpp"
#include "core/key_seed.hpp"
#include "core/pairing.hpp"
#include "core/seed_quantizer.hpp"
#include "protocol/faulty_channel.hpp"
#include "protocol/session.hpp"
#include "sim/scenario.hpp"

namespace wavekey::core {

/// Outcome of one full key-establishment session.
struct WaveKeyOutcome {
  bool success = false;
  protocol::FailureReason failure = protocol::FailureReason::kNone;
  BitVec key;                ///< the established l_k-bit key (on success)
  double seed_mismatch = 1.0;///< S_M vs S_R bit mismatch of this session
  double elapsed_s = 0.0;    ///< gesture start -> key established
  bool pipelines_ok = false; ///< both sides produced a seed
};

/// Telemetry record of one attempt inside establish_key_robust.
struct AttemptTrace {
  int attempt = 0;            ///< 1-based attempt index
  bool pipelines_ok = false;  ///< both pipelines produced a seed
  double seed_mismatch = 1.0;
  double eta = 0.0;           ///< error-correction rate used this attempt
  bool success = false;
  protocol::FailureReason failure = protocol::FailureReason::kNone;
  double elapsed_s = 0.0;     ///< session clock at exit of this attempt
  protocol::ArqStats arq;     ///< retransmission counters of this attempt
  /// Time this attempt's encode spent parked in the cross-session batching
  /// stage (0 on the serial path); charged into elapsed_s via the virtual
  /// session clock, surfaced here so tau pressure from coalescing is
  /// auditable per attempt (DESIGN.md §11.2).
  double encode_hold_s = 0.0;
};

/// Policy of the multi-attempt orchestrator.
struct RobustSessionConfig {
  std::size_t max_attempts = 3;
  /// Additive per-attempt relaxation of eta (graceful degradation); the
  /// effective eta stays capped at config.eta_security_cap so Eq. (4)'s
  /// guessing bound is never violated.
  double eta_relax_per_attempt = 0.0;
  bool use_arq = true;                ///< ARQ transport vs single-shot
  protocol::ArqConfig arq;
  /// Link-fault model; nullopt derives it from the scenario's LinkQuality
  /// (see sim::LinkQuality::for_environment). The channel seed is re-derived
  /// per attempt so every retry sees fresh fault randomness.
  std::optional<protocol::FaultyChannelConfig> channel;
};

/// Outcome of a robust (multi-attempt) key establishment.
struct RobustOutcome {
  bool success = false;
  protocol::FailureReason failure = protocol::FailureReason::kNone;  ///< last attempt's
  BitVec key;
  int attempts_used = 0;
  double total_elapsed_s = 0.0;       ///< summed over attempts (re-waves included)
  std::vector<AttemptTrace> trace;    ///< one entry per attempt, in order
};

class WaveKeySystem {
 public:
  /// Takes ownership of a trained encoder pair. The quantizer defaults to
  /// the paper's standard-normal layout; call calibrate() to switch to the
  /// empirical-quantile layout and fix eta.
  WaveKeySystem(EncoderPair encoders, WaveKeyConfig config);

  const WaveKeyConfig& config() const { return config_; }
  WaveKeyConfig& config() { return config_; }
  EncoderPair& encoders() { return encoders_; }
  const SeedQuantizer& quantizer() const { return quantizer_; }
  void set_quantizer(SeedQuantizer q) { quantizer_ = std::move(q); }

  /// Installs (or clears, with nullptr) a cross-session batched encoder
  /// stage for establish_key / establish_key_robust. Non-owning: the
  /// service must outlive the system — and note the service borrows this
  /// system's EncoderPair, so wire it to encoders(). Off by default; the
  /// serial determinism contract is untouched unless a service is set.
  void set_encoder_service(BatchedEncoderService* service) { encoder_service_ = service; }
  BatchedEncoderService* encoder_service() const { return encoder_service_; }

  /// Calibrates the quantizer bins (empirical quantiles) and eta on a
  /// dataset (SVI-C2); stores both in the system.
  EtaCalibration calibrate(const WaveKeyDataset& dataset);

  /// Runs one complete simulated session: gesture + sensors + pipelines +
  /// encoders + the full OT key agreement over the simulated link.
  /// `interceptor` optionally interposes an adversary on the channel.
  WaveKeyOutcome establish_key(const sim::ScenarioConfig& scenario, std::uint64_t seed,
                               const protocol::Interceptor& interceptor = {});

  /// Fault-tolerant key establishment: re-runs the gesture -> pipeline ->
  /// agreement loop up to max_attempts times with fresh randomness per
  /// attempt (new gesture, new pads, new channel fault schedule), runs the
  /// agreement over the ARQ transport on a FaultyChannel, and optionally
  /// relaxes eta per attempt within the calibrated security cap. Every
  /// attempt is recorded in the returned trace.
  RobustOutcome establish_key_robust(const sim::ScenarioConfig& scenario, std::uint64_t seed,
                                     const RobustSessionConfig& robust = {},
                                     const protocol::Interceptor& interceptor = {});

  /// Protocol parameters implied by the current config.
  protocol::AgreementParams agreement_params() const;

 private:
  EncoderPair encoders_;
  WaveKeyConfig config_;
  SeedQuantizer quantizer_;
  BatchedEncoderService* encoder_service_ = nullptr;  ///< non-owning, optional
};

}  // namespace wavekey::core
