#pragma once

// Central hyperparameter record of the WaveKey scheme. Default values are
// the ones the paper derives experimentally in SVI-C (l_f = 12, N_b = 9,
// tau = 120 ms) plus the dataset-scale knobs for the simulated cohort.

#include <cstddef>
#include <cstdint>

namespace wavekey::core {

struct WaveKeyConfig {
  // --- key-seed generation (SIV-C) ---
  std::size_t latent_dim = 12;       ///< l_f: feature-vector length
  std::size_t quant_bins = 9;        ///< N_b: quantization bins per element
  double eta = 0.10;                 ///< ECC error-correction rate; calibrated
                                     ///< from data at the 99th percentile of
                                     ///< the seed mismatch (SVI-C2); this is
                                     ///< only the pre-calibration fallback
  double eta_security_cap = 0.25;    ///< upper bound on eta: keeps Eq. (4)'s
                                     ///< random-guess success ~4e-4 at
                                     ///< l_s=48, the paper's quoted level.
                                     ///< When the benign p99 exceeds the
                                     ///< cap, benign success pays instead of
                                     ///< security (EXPERIMENTS.md).

  // --- key agreement (SIV-D) ---
  std::size_t key_bits = 256;        ///< l_k: desired key length
  double tau_s = 0.120;              ///< message deadline past the window
  double gesture_window_s = 2.0;     ///< recording window per key

  // --- encoder input scaling (puts both modalities on O(1) ranges) ---
  double imu_input_scale = 1.0 / 3.0;   ///< m/s^2 -> network units
  double phase_input_scale = 1.0 / 2.0; ///< rad -> network units

  /// Bits per latent element under the Gray encoding: ceil(log2(N_b)).
  std::size_t bits_per_element() const;

  /// l_s: key-seed length in bits.
  std::size_t seed_bits() const { return latent_dim * bits_per_element(); }

  /// l_b: pad length per OT secret so that 2 * l_s * l_b >= l_k (SIV-D2).
  std::size_t pad_bits() const { return (key_bits + 2 * seed_bits() - 1) / (2 * seed_bits()); }
};

}  // namespace wavekey::core
