#pragma once

// Concurrent pairing service: services N independent pairing sessions
// (quantize -> OT -> fuzzy commitment -> verify) from a bounded MPMC
// admission queue using a fixed-size runtime::ThreadPool, with per-session
// latency accounting against the paper's tau window.
//
// This models an RFID reader / access-control head-end serving several
// simultaneous gesture taps: each submitted request carries the two latent
// feature vectors already extracted by the encoders (feature extraction is
// per-device work; the shared SeedQuantizer::quantize is const and safe to
// call concurrently), and the engine runs the full key agreement for each.
//
// Timing model. Two clocks are kept per session:
//  * the *virtual session clock* of protocol::run_key_agreement, which
//    charges measured wall-clock crypto cost into the session timeline — so
//    CPU contention between concurrent sessions genuinely inflates each
//    session's critical-message arrival and can breach gesture_window + tau;
//  * *wall metrics* (queue_wait_s, service_s) for throughput accounting.
// `radio_wait_s` emulates blocking radio I/O (BLE connection-interval
// round-trips) with a real sleep inside each session; worker threads overlap
// these waits, which is where the engine's throughput scaling comes from on
// machines with few cores.
//
// Thread-safety: submit() may be called from any number of producer threads
// concurrently. finish() must be called exactly once, from one thread, after
// all producers are done; it closes the queue, drains every pending session,
// joins the workers, and returns the reports sorted by request id. The
// engine must outlive all submit() calls.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/seed_quantizer.hpp"
#include "nn/tensor.hpp"
#include "numeric/bitvec.hpp"
#include "protocol/session.hpp"

namespace wavekey::runtime {
class ThreadPool;
}

namespace wavekey::core {

class BatchedEncoderService;

struct PairingEngineConfig {
  std::size_t threads = 1;         ///< worker threads servicing sessions
  std::size_t queue_capacity = 64; ///< bounded admission queue (backpressure)
  /// Emulated blocking radio I/O per session (seconds of real sleep spread
  /// across the exchange). Zero disables the emulation.
  double radio_wait_s = 0.0;
  /// Per-session protocol timing (tau, gesture window, link latency). The
  /// engine overwrites `session.params.seed_bits` from the quantizer.
  protocol::SessionConfig session;
  /// Streaming handoff of established keys (pairing → server::KeyVault):
  /// invoked on the worker thread the moment a session succeeds, before the
  /// report is filed — so the backend can start serving access requests for
  /// the session without waiting for finish(). The callback runs
  /// concurrently from every worker and must be thread-safe; keep it cheap
  /// (a vault insert), as its wall time counts against the worker.
  std::function<void(std::uint64_t id, const BitVec& key)> on_established;
  /// Optional cross-session batched encoder stage (DESIGN.md §11). When set,
  /// requests that carry raw sensor tensors are encoded through the shared
  /// deadline-aware coalescing service; the coalescing hold time plus this
  /// session's share of the batched forward is charged into the virtual
  /// session clock, so batching still counts against tau. Non-owning: the
  /// service must outlive the engine. nullptr (the default) leaves the
  /// serial latent path untouched.
  BatchedEncoderService* encoder_service = nullptr;
  /// Bench-only knob: when >= 0 and a request was encoded through the
  /// service, the server-side latent is replaced by the mobile latent plus
  /// N(0, sigma) noise derived from the request's rng_seed — the same
  /// synthetic-session convention bench_throughput's request generator uses,
  /// so untrained models exercise the full reconcile path deterministically.
  /// The RF-En forward still runs and its cost is still charged. Negative
  /// (the default) keeps both real latents.
  double synthetic_residual_sigma = -1.0;
};

/// One pairing job: pre-extracted latents for both sides plus the session's
/// entropy seed (deterministic replay: same seed -> same pads/nonces).
struct PairingRequest {
  std::uint64_t id = 0;
  std::vector<double> mobile_latent;
  std::vector<double> server_latent;
  std::uint64_t rng_seed = 0;
  /// Raw sensor windows ([3, 200] IMU / [2, 400] RF). Used instead of the
  /// latents above when the engine has an encoder_service and both tensors
  /// are non-empty; ignored (and may stay empty) otherwise.
  nn::Tensor imu_input;
  nn::Tensor rf_input;
};

/// Per-session outcome + latency accounting.
struct PairingReport {
  std::uint64_t id = 0;
  bool success = false;
  protocol::FailureReason failure = protocol::FailureReason::kNone;
  std::string error;            ///< non-protocol failure (e.g. bad latent)
  BitVec key;                   ///< agreed session key (mobile side) on success
  double queue_wait_s = 0.0;    ///< wall: submit -> service start
  double service_s = 0.0;       ///< wall: service start -> done (incl. radio)
  double elapsed_s = 0.0;       ///< virtual session clock at exit
  /// Virtual arrival of the latest deadline-bound message minus the gesture
  /// window; must stay <= tau on every success.
  double critical_latency_s = 0.0;
  bool tau_violation = false;   ///< success with critical_latency_s > tau
  double encode_hold_s = 0.0;   ///< coalescing-stage hold (charged to the clock)
  double encode_s = 0.0;        ///< this session's share of the batched forwards
  std::size_t encode_batch = 0; ///< coalesced batch size (0 = latents path)
};

class PairingEngine {
 public:
  /// The quantizer is shared by reference and must outlive the engine.
  PairingEngine(const SeedQuantizer& quantizer, const PairingEngineConfig& config);
  ~PairingEngine();

  PairingEngine(const PairingEngine&) = delete;
  PairingEngine& operator=(const PairingEngine&) = delete;

  /// Enqueues a session; blocks while the queue is full (backpressure).
  /// Returns false once finish() has closed the queue.
  bool submit(PairingRequest request);

  /// Closes the queue, drains all pending sessions, joins the workers and
  /// returns every report sorted by request id. Idempotent.
  std::vector<PairingReport> finish();

  std::size_t threads() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace wavekey::core
