#include "core/dataset.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>

#include "imu/imu_pipeline.hpp"
#include "numeric/rng.hpp"
#include "rfid/rfid_pipeline.hpp"
#include "sim/scenario.hpp"

namespace wavekey::core {

std::size_t WaveKeyConfig::bits_per_element() const {
  return static_cast<std::size_t>(std::bit_width(quant_bins - 1));
}

Sample WaveKeyDataset::make_sample(const Matrix& linear_accel, const Matrix& rfid_processed,
                                   const WaveKeyConfig& config) {
  Sample s;
  const std::size_t la = linear_accel.rows();
  s.imu = nn::Tensor({3, la});
  // Per-window RMS normalization: gesture amplitude/tempo scale varies per
  // person and is partially unobservable on the RFID side (projection
  // cosine), so both inputs are made shape-only. config.imu_input_scale is
  // retained as a fallback multiplier for degenerate (all-zero) windows.
  double sum2 = 0.0;
  for (std::size_t i = 0; i < la; ++i)
    for (std::size_t c = 0; c < 3; ++c) sum2 += linear_accel(i, c) * linear_accel(i, c);
  const double rms = std::sqrt(sum2 / static_cast<double>(la * 3));
  const double scale = rms > 1e-6 ? 1.0 / rms : config.imu_input_scale;
  for (std::size_t i = 0; i < la; ++i)
    for (std::size_t c = 0; c < 3; ++c)
      s.imu[c * la + i] = static_cast<float>(linear_accel(i, c) * scale);

  const std::size_t lr = rfid_processed.rows();
  s.rfid = nn::Tensor({2, lr});
  s.rfid_mag = nn::Tensor({lr});
  for (std::size_t i = 0; i < lr; ++i) {
    s.rfid[i] = static_cast<float>(rfid_processed(i, 0) * config.phase_input_scale);
    const auto mag = static_cast<float>(rfid_processed(i, 1));
    s.rfid[lr + i] = mag;
    s.rfid_mag[i] = mag;
  }
  return s;
}

WaveKeyDataset WaveKeyDataset::generate(const DatasetConfig& dataset_config,
                                        const WaveKeyConfig& wavekey_config) {
  WaveKeyDataset ds;
  Rng rng(dataset_config.seed);

  // Fixed per-volunteer styles for the whole campaign.
  std::vector<sim::VolunteerStyle> styles;
  for (std::size_t v = 0; v < dataset_config.volunteers; ++v)
    styles.push_back(sim::VolunteerStyle::sample(rng));

  const auto devices = sim::MobileDeviceProfile::standard_devices();
  const auto tags = sim::TagProfile::standard_tags();

  for (std::size_t v = 0; v < dataset_config.volunteers; ++v) {
    for (std::size_t d = 0; d < dataset_config.devices && d < devices.size(); ++d) {
      for (std::size_t g = 0; g < dataset_config.gestures_per_pair; ++g) {
        sim::ScenarioConfig sc;
        sc.volunteer = styles[v];
        sc.device = devices[d];
        sc.tag = tags[rng.uniform_u64(tags.size())];
        sc.environment_id = 1 + static_cast<int>(rng.uniform_u64(4));
        sc.dynamic_environment = dataset_config.include_dynamic && (g % 3 == 2);
        sc.distance_m = rng.uniform(1.0, 9.0);
        sc.azimuth_deg = rng.uniform(-60.0, 60.0);
        sc.gesture.active_s = dataset_config.gesture_active_s;

        sim::ScenarioSimulator simulator(sc, rng.next());
        const sim::SessionRecording rec = simulator.run();

        // Random overlapping windows within the active gesture, mirroring
        // the paper's 20 windows per 15 s gesture.
        const double max_offset =
            dataset_config.gesture_active_s - wavekey_config.gesture_window_s - 0.8;
        for (std::size_t w = 0; w < dataset_config.windows_per_gesture; ++w) {
          const double offset = w == 0 ? 0.0 : rng.uniform(0.0, std::max(max_offset, 0.0));
          imu::ImuPipelineConfig ic;
          ic.window_s = wavekey_config.gesture_window_s;
          ic.window_offset_s = offset;
          rfid::RfidPipelineConfig rc;
          rc.window_s = wavekey_config.gesture_window_s;
          rc.window_offset_s = offset;

          const auto imu_out = imu::process_imu(rec.imu, ic);
          const auto rfid_out = rfid::process_rfid(rec.rfid, rc);
          if (!imu_out || !rfid_out) continue;
          ds.add(make_sample(imu_out->linear_accel, rfid_out->processed, wavekey_config));
        }
      }
    }
  }
  return ds;
}

void WaveKeyDataset::batch(const std::vector<std::size_t>& indices, nn::Tensor& imu,
                           nn::Tensor& rfid, nn::Tensor& mag) const {
  if (indices.empty()) throw std::invalid_argument("WaveKeyDataset::batch: empty index list");
  const std::size_t n = indices.size();
  const auto& first = samples_.at(indices[0]);
  imu = nn::Tensor({n, first.imu.dim(0), first.imu.dim(1)});
  rfid = nn::Tensor({n, first.rfid.dim(0), first.rfid.dim(1)});
  mag = nn::Tensor({n, first.rfid_mag.dim(0)});
  for (std::size_t b = 0; b < n; ++b) {
    const Sample& s = samples_.at(indices[b]);
    std::copy(s.imu.data().begin(), s.imu.data().end(), imu.data().begin() + b * s.imu.size());
    std::copy(s.rfid.data().begin(), s.rfid.data().end(),
              rfid.data().begin() + b * s.rfid.size());
    std::copy(s.rfid_mag.data().begin(), s.rfid_mag.data().end(),
              mag.data().begin() + b * s.rfid_mag.size());
  }
}

}  // namespace wavekey::core
