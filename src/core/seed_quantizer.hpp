#pragma once

// Seed quantizer with two bin-placement modes:
//
//  * normal mode — the paper's assumption: the encoders end in batch-norm,
//    so every latent element is ~N(0,1) and one shared bin layout solving
//    Phi(b_i) = i/N_b (Eq. (1)) applies to all dimensions;
//  * calibrated mode — bins placed at the *empirical* per-dimension
//    quantiles of the latent over the training corpus. This guarantees the
//    equal-occupancy property Eq. (1) is after (maximal per-element seed
//    entropy) even when the eval-time latent distribution deviates from the
//    batch-norm ideal. The boundaries are public constants shipped with the
//    trained model (they leak nothing about any session).
//
// Both sides of a session must use the identical quantizer instance
// (serialized alongside the encoder weights).

#include <iosfwd>
#include <vector>

#include "core/config.hpp"
#include "core/dataset.hpp"
#include "core/encoders.hpp"
#include "numeric/bitvec.hpp"

namespace wavekey::core {

class SeedQuantizer {
 public:
  /// The paper's standard-normal layout, identical for every dimension.
  static SeedQuantizer from_normal(const WaveKeyConfig& config);

  /// Empirical per-dimension quantile layout, computed from the pooled
  /// f_M / f_R latents of the dataset (eval-mode inference).
  static SeedQuantizer calibrated(EncoderPair& encoders, const WaveKeyDataset& dataset,
                                  const WaveKeyConfig& config);

  /// Same, from pre-extracted per-dimension value pools (used by the N_b
  /// sweep bench, which re-bins fixed latents for each candidate N_b).
  static SeedQuantizer from_pooled(std::vector<std::vector<double>> pooled,
                                   std::size_t num_bins);

  std::size_t latent_dim() const { return boundaries_.size(); }
  std::size_t num_bins() const { return num_bins_; }
  std::size_t bits_per_element() const { return bits_per_element_; }
  std::size_t seed_bits() const { return latent_dim() * bits_per_element_; }

  /// Quantizes a latent vector into the key-seed. Throws on length mismatch.
  BitVec quantize(const std::vector<double>& features) const;

  /// Bin index of one value in one dimension (for tests / entropy audits).
  std::size_t bin_of(std::size_t dim, double x) const;

  void save(std::ostream& os) const;
  static SeedQuantizer load(std::istream& is);

 private:
  SeedQuantizer() = default;

  std::size_t num_bins_ = 0;
  std::size_t bits_per_element_ = 0;
  std::vector<std::vector<double>> boundaries_;  // [dim][num_bins-1]
};

}  // namespace wavekey::core
