#include "core/encoders.hpp"

#include <algorithm>
#include <fstream>
#include <numeric>
#include <stdexcept>

#include "nn/batchnorm.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "numeric/stats.hpp"

namespace wavekey::core {
namespace {

constexpr char kMagic[] = "WKEP1";

// Indices of the surgery-relevant layers inside each Sequential (see build()).
constexpr std::size_t kEncoderDenseIdx = 7;
constexpr std::size_t kEncoderBnIdx = 8;
constexpr std::size_t kDecoderDeconvIdx = 1;

nn::Tensor add_tensors(const nn::Tensor& a, const nn::Tensor& b) {
  if (!a.same_shape(b)) throw std::logic_error("add_tensors: shape mismatch");
  nn::Tensor out = a;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] += b[i];
  return out;
}

nn::Tensor scale_tensor(const nn::Tensor& a, float s) {
  nn::Tensor out = a;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] *= s;
  return out;
}

// Gradient of gamma * sum_{i != j} Cov_ij^2 over a batch of latents f
// ([B, D], approximately zero-mean after batch-norm):
//   dL/df_bi = gamma * (4/B) * sum_{j != i} Cov_ij * f_bj.
nn::Tensor decorrelation_grad(const nn::Tensor& f, float gamma) {
  const std::size_t b = f.dim(0), d = f.dim(1);
  // Column means (BN leaves them ~0, but subtract for exactness).
  std::vector<float> mean_col(d, 0.0f);
  for (std::size_t s = 0; s < b; ++s)
    for (std::size_t j = 0; j < d; ++j) mean_col[j] += f.at2(s, j);
  for (float& m : mean_col) m /= static_cast<float>(b);

  std::vector<float> cov(d * d, 0.0f);
  for (std::size_t s = 0; s < b; ++s)
    for (std::size_t i = 0; i < d; ++i)
      for (std::size_t j = 0; j < d; ++j)
        cov[i * d + j] += (f.at2(s, i) - mean_col[i]) * (f.at2(s, j) - mean_col[j]);
  for (float& c : cov) c /= static_cast<float>(b);

  nn::Tensor grad(f.shape());
  const float scale = gamma * 4.0f / static_cast<float>(b);
  for (std::size_t s = 0; s < b; ++s)
    for (std::size_t i = 0; i < d; ++i) {
      float g = 0.0f;
      for (std::size_t j = 0; j < d; ++j) {
        if (j == i) continue;
        g += cov[i * d + j] * (f.at2(s, j) - mean_col[j]);
      }
      grad.at2(s, i) = scale * g;
    }
  return grad;
}

}  // namespace

EncoderPair::EncoderPair(std::size_t latent_dim, Rng& rng) : latent_dim_(latent_dim) {
  if (latent_dim_ == 0) throw std::invalid_argument("EncoderPair: latent_dim must be > 0");
  build(rng);
}

void EncoderPair::build(Rng& rng) {
  // IMU-En: [3, 200] -> conv -> conv -> dense -> dense -> batch-norm ->
  // [l_f]. (The hidden dense layer is our one deviation from the paper's
  // two-conv + one-FC sketch: the latent must normalize away the gesture's
  // dominant direction and scale, which needs one extra nonlinear stage.)
  imu_en_.add<nn::Conv1D>(3, 16, 7, 2, 3, rng);
  imu_en_.add<nn::ReLU>();
  imu_en_.add<nn::Conv1D>(16, 24, 5, 2, 2, rng);
  imu_en_.add<nn::ReLU>();
  imu_en_.add<nn::Flatten>();
  imu_en_.add<nn::Dense>(24 * 50, 128, rng);
  imu_en_.add<nn::ReLU>();
  imu_en_.add<nn::Dense>(128, latent_dim_, rng);
  imu_en_.add<nn::BatchNorm1D>(latent_dim_, /*affine=*/false);

  // RF-En: [2, 400] -> conv -> conv -> dense -> dense -> batch-norm -> [l_f].
  rf_en_.add<nn::Conv1D>(2, 16, 9, 4, 4, rng);
  rf_en_.add<nn::ReLU>();
  rf_en_.add<nn::Conv1D>(16, 24, 5, 2, 2, rng);
  rf_en_.add<nn::ReLU>();
  rf_en_.add<nn::Flatten>();
  rf_en_.add<nn::Dense>(24 * 50, 128, rng);
  rf_en_.add<nn::ReLU>();
  rf_en_.add<nn::Dense>(128, latent_dim_, rng);
  rf_en_.add<nn::BatchNorm1D>(latent_dim_, /*affine=*/false);

  // De: deconv -> FC -> deconv -> FC, ReLU after the first three parametric
  // layers (paper Fig. 5). Reconstructs the 400 magnitude samples from f_M.
  de_.add<nn::Reshape>(std::vector<std::size_t>{latent_dim_, 1});
  de_.add<nn::ConvTranspose1D>(latent_dim_, 8, 8, 1, rng);  // -> [8, 8]
  de_.add<nn::ReLU>();
  de_.add<nn::Flatten>();                                   // -> [64]
  de_.add<nn::Dense>(64, 96, rng);
  de_.add<nn::ReLU>();
  de_.add<nn::Reshape>(std::vector<std::size_t>{8, 12});
  de_.add<nn::ConvTranspose1D>(8, 4, 7, 4, rng);            // -> [4, 51]
  de_.add<nn::ReLU>();
  de_.add<nn::Flatten>();                                   // -> [204]
  de_.add<nn::Dense>(204, 400, rng);
}

LossBreakdown EncoderPair::train(const WaveKeyDataset& dataset, const TrainConfig& config) {
  if (dataset.size() < config.batch_size)
    throw std::invalid_argument("EncoderPair::train: dataset smaller than one batch");

  std::vector<nn::Param> params = imu_en_.params();
  {
    const auto rp = rf_en_.params();
    params.insert(params.end(), rp.begin(), rp.end());
    const auto dp = de_.params();
    params.insert(params.end(), dp.begin(), dp.end());
  }
  nn::Adam optimizer(std::move(params), config.learning_rate);

  Rng rng(config.seed);
  std::vector<std::size_t> order(dataset.size());
  std::iota(order.begin(), order.end(), 0);

  LossBreakdown last;
  last.decoder_weight = config.lambda;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Fisher-Yates shuffle with our deterministic Rng.
    for (std::size_t i = order.size(); i-- > 1;)
      std::swap(order[i], order[rng.uniform_u64(i + 1)]);

    double epoch_feature = 0.0, epoch_decoder = 0.0;
    std::size_t batches = 0;
    for (std::size_t start = 0; start + config.batch_size <= order.size();
         start += config.batch_size) {
      const std::vector<std::size_t> idx(order.begin() + static_cast<std::ptrdiff_t>(start),
                                         order.begin() +
                                             static_cast<std::ptrdiff_t>(start + config.batch_size));
      nn::Tensor imu, rfid, mag;
      dataset.batch(idx, imu, rfid, mag);
      if (config.input_noise > 0.0f) {
        for (std::size_t j = 0; j < imu.size(); ++j)
          imu[j] += static_cast<float>(rng.normal(0.0, config.input_noise));
        for (std::size_t j = 0; j < rfid.size(); ++j)
          rfid[j] += static_cast<float>(rng.normal(0.0, config.input_noise));
      }

      const nn::Tensor fm = imu_en_.forward(imu, true);
      const nn::Tensor fr = rf_en_.forward(rfid, true);
      const nn::Tensor rec = de_.forward(fm, true);

      const auto [feat_loss, feat_grad] = nn::euclidean_loss(fm, fr);
      const auto [dec_loss, dec_grad] = nn::euclidean_loss(rec, mag);

      const nn::Tensor de_grad_in = de_.backward(scale_tensor(dec_grad, config.lambda));
      nn::Tensor imu_grad = add_tensors(feat_grad, de_grad_in);
      nn::Tensor rf_grad = scale_tensor(feat_grad, -1.0f);
      if (config.decorrelation > 0.0f) {
        imu_grad = add_tensors(imu_grad, decorrelation_grad(fm, config.decorrelation));
        rf_grad = add_tensors(rf_grad, decorrelation_grad(fr, config.decorrelation));
      }
      imu_en_.backward(imu_grad);
      rf_en_.backward(rf_grad);
      optimizer.step();

      epoch_feature += feat_loss;
      epoch_decoder += dec_loss;
      ++batches;
    }
    if (batches > 0) {
      last.feature = epoch_feature / static_cast<double>(batches);
      last.decoder = epoch_decoder / static_cast<double>(batches);
      if (config.verbose) {
        std::fprintf(stderr, "[train] epoch %zu/%zu  feature=%.4f  decoder=%.4f\n", epoch + 1,
                     config.epochs, last.feature, last.decoder);
      }
    }
  }
  return last;
}

LossBreakdown EncoderPair::evaluate(const WaveKeyDataset& dataset, float lambda) {
  LossBreakdown result;
  result.decoder_weight = lambda;
  if (dataset.size() == 0) return result;

  constexpr std::size_t kEvalBatch = 64;
  double feat = 0.0, dec = 0.0;
  std::size_t count = 0;
  for (std::size_t start = 0; start < dataset.size(); start += kEvalBatch) {
    std::vector<std::size_t> idx;
    for (std::size_t i = start; i < std::min(start + kEvalBatch, dataset.size()); ++i)
      idx.push_back(i);
    nn::Tensor imu, rfid, mag;
    dataset.batch(idx, imu, rfid, mag);
    const nn::Tensor fm = imu_en_.forward(imu, false);
    const nn::Tensor fr = rf_en_.forward(rfid, false);
    const nn::Tensor rec = de_.forward(fm, false);
    const auto [f, g1] = nn::euclidean_loss(fm, fr);
    const auto [d, g2] = nn::euclidean_loss(rec, mag);
    feat += f * static_cast<double>(idx.size());
    dec += d * static_cast<double>(idx.size());
    count += idx.size();
  }
  result.feature = feat / static_cast<double>(count);
  result.decoder = dec / static_cast<double>(count);
  return result;
}

std::vector<double> EncoderPair::features_of(nn::Sequential& net, const nn::Tensor& input) {
  std::vector<std::size_t> shape{1};
  for (std::size_t d = 0; d < input.rank(); ++d) shape.push_back(input.dim(d));
  const nn::Tensor batched = input.reshaped(shape);
  const nn::Tensor out = net.forward(batched, false);
  std::vector<double> f(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) f[i] = out[i];
  return f;
}

std::vector<double> EncoderPair::imu_features(const nn::Tensor& imu_input) {
  return features_of(imu_en_, imu_input);
}

std::vector<double> EncoderPair::rfid_features(const nn::Tensor& rfid_input) {
  return features_of(rf_en_, rfid_input);
}

std::size_t EncoderPair::prune_lowest_variance_unit(const WaveKeyDataset& dataset) {
  if (latent_dim_ <= 1) throw std::logic_error("prune: cannot go below one unit");
  if (dataset.size() == 0) throw std::invalid_argument("prune: empty dataset");

  // Output variance of the *dense* layer neurons (pre-batch-norm, as the
  // paper measures), accumulated over the dataset for both encoders.
  std::vector<std::vector<double>> imu_outs(latent_dim_), rf_outs(latent_dim_);
  constexpr std::size_t kEvalBatch = 64;
  for (std::size_t start = 0; start < dataset.size(); start += kEvalBatch) {
    std::vector<std::size_t> idx;
    for (std::size_t i = start; i < std::min(start + kEvalBatch, dataset.size()); ++i)
      idx.push_back(i);
    nn::Tensor imu, rfid, mag;
    dataset.batch(idx, imu, rfid, mag);

    auto dense_out = [&](nn::Sequential& net, const nn::Tensor& in) {
      nn::Tensor x = in;
      for (std::size_t l = 0; l <= kEncoderDenseIdx; ++l) x = net.layer(l).forward(x, false);
      return x;
    };
    const nn::Tensor om = dense_out(imu_en_, imu);
    const nn::Tensor orf = dense_out(rf_en_, rfid);
    for (std::size_t b = 0; b < idx.size(); ++b)
      for (std::size_t j = 0; j < latent_dim_; ++j) {
        imu_outs[j].push_back(om.at2(b, j));
        rf_outs[j].push_back(orf.at2(b, j));
      }
  }

  std::size_t worst = 0;
  double worst_var = 1e300;
  for (std::size_t j = 0; j < latent_dim_; ++j) {
    const double v = variance(imu_outs[j]) + variance(rf_outs[j]);
    if (v < worst_var) {
      worst_var = v;
      worst = j;
    }
  }

  auto& imu_dense = dynamic_cast<nn::Dense&>(imu_en_.layer(kEncoderDenseIdx));
  auto& imu_bn = dynamic_cast<nn::BatchNorm1D&>(imu_en_.layer(kEncoderBnIdx));
  auto& rf_dense = dynamic_cast<nn::Dense&>(rf_en_.layer(kEncoderDenseIdx));
  auto& rf_bn = dynamic_cast<nn::BatchNorm1D&>(rf_en_.layer(kEncoderBnIdx));
  auto& de_reshape = dynamic_cast<nn::Reshape&>(de_.layer(0));
  auto& de_deconv = dynamic_cast<nn::ConvTranspose1D&>(de_.layer(kDecoderDeconvIdx));

  imu_dense.remove_output_unit(worst);
  imu_bn.remove_unit(worst);
  rf_dense.remove_output_unit(worst);
  rf_bn.remove_unit(worst);
  de_deconv.remove_input_channel(worst);
  --latent_dim_;
  de_reshape = nn::Reshape(std::vector<std::size_t>{latent_dim_, 1});
  return worst;
}

void EncoderPair::save(std::ostream& os) const {
  os.write(kMagic, sizeof(kMagic));
  nn::write_u64(os, latent_dim_);
  imu_en_.save(os);
  rf_en_.save(os);
  de_.save(os);
}

void EncoderPair::save_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) throw std::runtime_error("EncoderPair::save_file: cannot open " + path);
  save(os);
}

void EncoderPair::load(std::istream& is) {
  char magic[sizeof(kMagic)];
  is.read(magic, sizeof(kMagic));
  if (!is || std::string(magic, sizeof(kMagic)) != std::string(kMagic, sizeof(kMagic)))
    throw std::runtime_error("EncoderPair::load: bad magic");
  const std::uint64_t dim = nn::read_u64(is);
  if (dim != latent_dim_) throw std::runtime_error("EncoderPair::load: latent_dim mismatch");
  imu_en_.load(is);
  rf_en_.load(is);
  de_.load(is);
}

EncoderPair EncoderPair::load_file(const std::string& path) {
  std::ifstream is(path, std::ios::binary);
  if (!is) throw std::runtime_error("EncoderPair::load_file: cannot open " + path);
  char magic[sizeof(kMagic)];
  is.read(magic, sizeof(kMagic));
  if (!is || std::string(magic, sizeof(kMagic)) != std::string(kMagic, sizeof(kMagic)))
    throw std::runtime_error("EncoderPair::load_file: bad magic");
  const std::uint64_t dim = nn::read_u64(is);
  Rng rng(0);
  EncoderPair pair(dim, rng);
  pair.imu_en_.load(is);
  pair.rf_en_.load(is);
  pair.de_.load(is);
  return pair;
}

}  // namespace wavekey::core
