#pragma once

// Cross-session batched encoder service (DESIGN.md §11): the deadline-aware
// coalescing stage between core::PairingEngine workers and the IMU-En/RF-En
// networks. Each worker thread submits its session's raw sensor windows
// ([3, 200] IMU + [2, 400] RF) and blocks; the runtime::MicroBatcher
// coalesces concurrent submissions and one leader runs BOTH encoders over
// the whole batch through nn::BatchedInference (single GEMM per conv layer,
// weight matrices streamed once per batch).
//
// Accounting contract: the returned EncodedLatents carries (a) hold_s — the
// wall time this session spent parked in the coalescing stage waiting for
// co-batched work — and (b) this session's 1/B share of the measured batched
// forward wall time, separately for the mobile (IMU) and server (RF) side.
// The engine charges all of it into the session's virtual clock
// (pairing_engine.cpp), so batching amortizes compute but never hides
// latency from the tau budget: a max_hold_s that is too generous shows up
// as tau pressure, exactly like any other serving delay.
//
// Determinism: a batch of 1 routes through the serial Sequential::forward
// path bit-identically (nn/batched_infer.hpp); larger batches are
// deterministic given the batch composition. Coalescing itself is
// timing-dependent, which is why the service is OFF by default and never
// engaged by the serial establish_key paths unless explicitly installed.
//
// Thread-safety: encode() from any number of threads; close() idempotent,
// drains held sessions (the closer leads the final partial batch). Flushes
// are serialized internally — the wrapped Sequentials are externally
// synchronized (nn/sequential.hpp) and two batches can be in flight in the
// MicroBatcher (batch k+1 collects while batch k flushes).

#include <cstddef>
#include <mutex>
#include <vector>

#include "core/encoders.hpp"
#include "nn/batched_infer.hpp"
#include "runtime/micro_batcher.hpp"

namespace wavekey::core {

struct BatchedEncoderConfig {
  std::size_t max_batch = 16;  ///< dispatch as soon as this many sessions held
  double max_hold_s = 500e-6;  ///< dispatch when the oldest session waited this long
  std::size_t imu_channels = 3;
  std::size_t imu_length = 200;
  std::size_t rf_channels = 2;
  std::size_t rf_length = 400;
};

/// One session's share of a coalesced encoder dispatch.
struct EncodedLatents {
  std::vector<double> mobile;  ///< IMU-En latent (mobile side)
  std::vector<double> server;  ///< RF-En latent (server side)
  double hold_s = 0.0;         ///< time parked waiting for co-batched sessions
  double imu_forward_s = 0.0;  ///< 1/B share of the batched IMU forward
  double rf_forward_s = 0.0;   ///< 1/B share of the batched RF forward
  std::size_t batch_size = 0;  ///< sessions coalesced into this dispatch
  bool deadline_dispatch = false;  ///< dispatched on max_hold, not batch size
};

class BatchedEncoderService {
 public:
  /// Validates both encoder stacks for batched lowering up front (throws
  /// std::invalid_argument on an unsupported architecture). `encoders` is
  /// shared by reference and must outlive the service; it must not be
  /// retrained or pruned while the service is open.
  explicit BatchedEncoderService(EncoderPair& encoders, const BatchedEncoderConfig& config = {});
  ~BatchedEncoderService();

  BatchedEncoderService(const BatchedEncoderService&) = delete;
  BatchedEncoderService& operator=(const BatchedEncoderService&) = delete;

  /// Blocks until this session's latents return from a coalesced forward.
  /// The tensors are borrowed for the duration of the call only. Throws
  /// std::invalid_argument on a shape mismatch and std::runtime_error once
  /// the service is closed.
  EncodedLatents encode(const nn::Tensor& imu, const nn::Tensor& rf);

  /// Drains the currently held partial batch and fails future encodes.
  void close();

  runtime::MicroBatcherStats stats() const { return batcher_.stats(); }
  const BatchedEncoderConfig& config() const { return config_; }

 private:
  struct Item {
    const nn::Tensor* imu;
    const nn::Tensor* rf;
  };
  struct Out {
    std::vector<double> mobile, server;
    double imu_s = 0.0, rf_s = 0.0;
  };

  std::vector<Out> flush(std::vector<Item>& items);

  BatchedEncoderConfig config_;
  nn::BatchedInference imu_infer_;
  nn::BatchedInference rf_infer_;
  std::mutex flush_mutex_;  ///< serializes flushes over the shared Sequentials
  runtime::MicroBatcher<Item, Out> batcher_;
};

}  // namespace wavekey::core
