#pragma once

// The WaveKey model pair: IMU-En, RF-En, and the training-time decoder De
// (SIV-E, Fig. 5/6 of the paper). Both encoders are two-conv CNNs ending in
// a dense layer and an (affine-free) batch-norm, so inference-time latents
// are approximately standard normal per element — the property the
// quantizer's bin layout assumes. De reconstructs the RFID *magnitude*
// (phase is too environment-sensitive, as the paper found) from the IMU
// latent, forcing the shared latent to retain gesture information.
//
// Joint objective (Eq. (3)):
//   L = sum_i ||f_M,i - f_R,i||_2 + lambda * ||De(f_M,i) - R_i^Mag||_2

#include <iosfwd>
#include <string>

#include "core/config.hpp"
#include "core/dataset.hpp"
#include "nn/sequential.hpp"
#include "numeric/rng.hpp"

namespace wavekey::core {

struct TrainConfig {
  std::size_t epochs = 70;
  std::size_t batch_size = 32;
  float learning_rate = 1.5e-3f;
  float lambda = 0.4f;  ///< decoder-loss weight (paper: 0.4)
  /// Latent decorrelation penalty gamma * sum_{i != j} Cov(f_i, f_j)^2,
  /// applied to both encoders' batch outputs. This is our differentiable
  /// analog of the paper's redundancy control (they prune correlated latent
  /// units in the l_f study, SVI-C1); it directly raises the entropy of the
  /// quantized key-seeds.
  float decorrelation = 0.015f;
  /// Input-noise augmentation (1 sigma, applied to both modality tensors
  /// each step). The simulator is cheap but finite; jittering inputs is the
  /// classic defense against the encoders memorizing individual gestures.
  float input_noise = 0.05f;
  bool verbose = false;
  std::uint64_t seed = 0xC0FFEE;
};

/// Loss components on a dataset (eval semantics for reporting).
struct LossBreakdown {
  double feature = 0.0;   ///< mean ||f_M - f_R||_2
  double decoder = 0.0;   ///< mean ||De(f_M) - R_mag||_2
  double total() const { return feature + decoder_weight * decoder; }
  double decoder_weight = 0.4;
};

/// The trained model pair with its hyperparameters.
class EncoderPair {
 public:
  /// Builds freshly-initialized models for the given latent width.
  EncoderPair(std::size_t latent_dim, Rng& rng);

  std::size_t latent_dim() const { return latent_dim_; }

  /// Jointly trains IMU-En, RF-En, and De on the dataset. Returns the final
  /// epoch's mean training losses.
  LossBreakdown train(const WaveKeyDataset& dataset, const TrainConfig& config);

  /// Evaluates the Eq. (3) components on a dataset without training.
  LossBreakdown evaluate(const WaveKeyDataset& dataset, float lambda = 0.4f);

  /// Inference: latent feature vector of one IMU sample ([3, L] tensor).
  std::vector<double> imu_features(const nn::Tensor& imu_input);

  /// Inference: latent feature vector of one RFID sample ([2, L] tensor).
  std::vector<double> rfid_features(const nn::Tensor& rfid_input);

  /// One pruning round of the paper's l_f study: removes the lowest
  /// output-variance latent unit from *both* encoders (and fixes up De's
  /// input layer). Variances are measured over the dataset. Returns the
  /// removed unit's index.
  std::size_t prune_lowest_variance_unit(const WaveKeyDataset& dataset);

  /// Serialization of all three models (+ latent width tag).
  void save(std::ostream& os) const;
  void save_file(const std::string& path) const;

  /// Loads weights; the stored latent width must match this instance.
  void load(std::istream& is);
  static EncoderPair load_file(const std::string& path);

  nn::Sequential& imu_encoder() { return imu_en_; }
  nn::Sequential& rfid_encoder() { return rf_en_; }
  nn::Sequential& decoder() { return de_; }

 private:
  void build(Rng& rng);
  std::vector<double> features_of(nn::Sequential& net, const nn::Tensor& single_input);

  std::size_t latent_dim_;
  nn::Sequential imu_en_;
  nn::Sequential rf_en_;
  nn::Sequential de_;
};

}  // namespace wavekey::core
