#include "core/system.hpp"

#include <algorithm>

namespace wavekey::core {
namespace {

/// Maps the scenario's link quality onto the protocol's channel fault model.
protocol::FaultyChannelConfig channel_from_link(const sim::LinkQuality& q, std::uint64_t seed) {
  protocol::LinkFaultConfig f;
  f.loss = q.loss;
  f.corrupt = q.corrupt;
  f.duplicate = q.duplicate;
  f.jitter = q.jitter_ms > 0.0 ? protocol::JitterDistribution::kExponential
                               : protocol::JitterDistribution::kNone;
  f.jitter_s = q.jitter_ms / 1000.0;
  return protocol::FaultyChannelConfig::symmetric(f, seed);
}

}  // namespace

WaveKeySystem::WaveKeySystem(EncoderPair encoders, WaveKeyConfig config)
    : encoders_(std::move(encoders)),
      config_(config),
      quantizer_(SeedQuantizer::from_normal(config)) {
  if (encoders_.latent_dim() != config_.latent_dim)
    throw std::invalid_argument("WaveKeySystem: encoder latent_dim != config latent_dim");
}

EtaCalibration WaveKeySystem::calibrate(const WaveKeyDataset& dataset) {
  quantizer_ = SeedQuantizer::calibrated(encoders_, dataset, config_);
  const EtaCalibration cal =
      calibrate_eta(encoders_, dataset, quantizer_, config_.eta_security_cap);
  config_.eta = cal.eta;
  return cal;
}

protocol::AgreementParams WaveKeySystem::agreement_params() const {
  protocol::AgreementParams params;
  params.seed_bits = config_.seed_bits();
  params.key_bits = config_.key_bits;
  params.eta = config_.eta;
  return params;
}

WaveKeyOutcome WaveKeySystem::establish_key(const sim::ScenarioConfig& scenario,
                                            std::uint64_t seed,
                                            const protocol::Interceptor& interceptor) {
  WaveKeyOutcome outcome;

  const auto seeds =
      simulate_seed_pair(encoders_, quantizer_, config_, scenario, seed, encoder_service_);
  if (!seeds) return outcome;  // pipelines rejected the recording
  outcome.pipelines_ok = true;
  outcome.seed_mismatch = seeds->mismatch;

  protocol::SessionConfig session;
  session.params = agreement_params();
  session.gesture_window_s = config_.gesture_window_s;
  session.tau_s = config_.tau_s;
  // Batched-encode accounting (all zero on the serial path): coalescing hold
  // and forward shares count against this session's tau budget.
  session.mobile_compute_s += seeds->encode_hold_s + seeds->imu_encode_s;
  session.server_compute_s += seeds->rf_encode_s;

  crypto::Drbg mobile_rng(seed ^ 0xAB1Eull);
  crypto::Drbg server_rng(seed ^ 0x5E44ull);
  const protocol::SessionResult result = protocol::run_key_agreement(
      session, seeds->mobile_seed, seeds->server_seed, mobile_rng, server_rng, interceptor);

  outcome.success = result.success;
  outcome.failure = result.failure;
  outcome.elapsed_s = result.elapsed_s;
  if (result.success) outcome.key = result.mobile_key;
  return outcome;
}

RobustOutcome WaveKeySystem::establish_key_robust(const sim::ScenarioConfig& scenario,
                                                  std::uint64_t seed,
                                                  const RobustSessionConfig& robust,
                                                  const protocol::Interceptor& interceptor) {
  RobustOutcome outcome;
  const sim::LinkQuality link =
      scenario.link ? *scenario.link
                    : sim::LinkQuality::for_environment(scenario.environment_id,
                                                        scenario.dynamic_environment);
  const protocol::FaultyChannelConfig base_channel =
      robust.channel ? *robust.channel : channel_from_link(link, seed);

  for (std::size_t a = 0; a < robust.max_attempts; ++a) {
    AttemptTrace trace;
    trace.attempt = static_cast<int>(a) + 1;
    outcome.attempts_used = trace.attempt;
    // Fresh randomness per attempt: new gesture, new pads, new fault schedule.
    const std::uint64_t attempt_seed = seed + 0x9E3779B97F4A7C15ull * (a + 1);
    trace.eta = std::min(config_.eta + robust.eta_relax_per_attempt * static_cast<double>(a),
                         config_.eta_security_cap);

    const auto seeds = simulate_seed_pair(encoders_, quantizer_, config_, scenario, attempt_seed,
                                          encoder_service_);
    if (!seeds) {
      // Rejected recording: the user re-waves, which costs a gesture window.
      trace.elapsed_s = config_.gesture_window_s;
      outcome.failure = protocol::FailureReason::kNone;
      outcome.total_elapsed_s += trace.elapsed_s;
      outcome.trace.push_back(trace);
      continue;
    }
    trace.pipelines_ok = true;
    trace.seed_mismatch = seeds->mismatch;
    trace.encode_hold_s = seeds->encode_hold_s;

    protocol::SessionConfig session;
    session.params = agreement_params();
    session.params.eta = trace.eta;
    session.gesture_window_s = config_.gesture_window_s;
    session.tau_s = config_.tau_s;
    session.mobile_compute_s += seeds->encode_hold_s + seeds->imu_encode_s;
    session.server_compute_s += seeds->rf_encode_s;

    crypto::Drbg mobile_rng(attempt_seed ^ 0xAB1Eull);
    crypto::Drbg server_rng(attempt_seed ^ 0x5E44ull);

    protocol::SessionResult result;
    if (robust.use_arq) {
      protocol::FaultyChannelConfig channel_config = base_channel;
      channel_config.seed = base_channel.seed ^ (0xC0FFEEull + (a + 1) * 0x9E37ull);
      protocol::FaultyChannel channel(channel_config);
      result = protocol::run_key_agreement_arq(session, robust.arq, channel, seeds->mobile_seed,
                                               seeds->server_seed, mobile_rng, server_rng,
                                               interceptor);
    } else {
      result = protocol::run_key_agreement(session, seeds->mobile_seed, seeds->server_seed,
                                           mobile_rng, server_rng, interceptor);
    }

    trace.success = result.success;
    trace.failure = result.failure;
    trace.elapsed_s = result.elapsed_s;
    trace.arq = result.arq;
    outcome.failure = result.failure;
    outcome.total_elapsed_s += result.elapsed_s;
    outcome.trace.push_back(trace);
    if (result.success) {
      outcome.success = true;
      outcome.key = result.mobile_key;
      break;
    }
  }
  return outcome;
}

}  // namespace wavekey::core
