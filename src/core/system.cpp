#include "core/system.hpp"

namespace wavekey::core {

WaveKeySystem::WaveKeySystem(EncoderPair encoders, WaveKeyConfig config)
    : encoders_(std::move(encoders)),
      config_(config),
      quantizer_(SeedQuantizer::from_normal(config)) {
  if (encoders_.latent_dim() != config_.latent_dim)
    throw std::invalid_argument("WaveKeySystem: encoder latent_dim != config latent_dim");
}

EtaCalibration WaveKeySystem::calibrate(const WaveKeyDataset& dataset) {
  quantizer_ = SeedQuantizer::calibrated(encoders_, dataset, config_);
  const EtaCalibration cal =
      calibrate_eta(encoders_, dataset, quantizer_, config_.eta_security_cap);
  config_.eta = cal.eta;
  return cal;
}

protocol::AgreementParams WaveKeySystem::agreement_params() const {
  protocol::AgreementParams params;
  params.seed_bits = config_.seed_bits();
  params.key_bits = config_.key_bits;
  params.eta = config_.eta;
  return params;
}

WaveKeyOutcome WaveKeySystem::establish_key(const sim::ScenarioConfig& scenario,
                                            std::uint64_t seed,
                                            const protocol::Interceptor& interceptor) {
  WaveKeyOutcome outcome;

  const auto seeds = simulate_seed_pair(encoders_, quantizer_, config_, scenario, seed);
  if (!seeds) return outcome;  // pipelines rejected the recording
  outcome.pipelines_ok = true;
  outcome.seed_mismatch = seeds->mismatch;

  protocol::SessionConfig session;
  session.params = agreement_params();
  session.gesture_window_s = config_.gesture_window_s;
  session.tau_s = config_.tau_s;

  crypto::Drbg mobile_rng(seed ^ 0xAB1Eull);
  crypto::Drbg server_rng(seed ^ 0x5E44ull);
  const protocol::SessionResult result = protocol::run_key_agreement(
      session, seeds->mobile_seed, seeds->server_seed, mobile_rng, server_rng, interceptor);

  outcome.success = result.success;
  outcome.failure = result.failure;
  outcome.elapsed_s = result.elapsed_s;
  if (result.success) outcome.key = result.mobile_key;
  return outcome;
}

}  // namespace wavekey::core
