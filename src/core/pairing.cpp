#include "core/pairing.hpp"

#include "core/batched_encoder.hpp"
#include "core/dataset.hpp"
#include "core/key_seed.hpp"
#include "imu/imu_pipeline.hpp"
#include "rfid/rfid_pipeline.hpp"

namespace wavekey::core {

std::optional<SeedPairResult> simulate_seed_pair(EncoderPair& encoders,
                                                 const SeedQuantizer& quantizer,
                                                 const WaveKeyConfig& config,
                                                 const sim::ScenarioConfig& scenario,
                                                 std::uint64_t seed,
                                                 BatchedEncoderService* service) {
  sim::ScenarioSimulator simulator(scenario, seed);
  const sim::SessionRecording rec = simulator.run();

  imu::ImuPipelineConfig ic;
  ic.window_s = config.gesture_window_s;
  rfid::RfidPipelineConfig rc;
  rc.window_s = config.gesture_window_s;

  const auto imu_out = imu::process_imu(rec.imu, ic);
  const auto rfid_out = rfid::process_rfid(rec.rfid, rc);
  if (!imu_out || !rfid_out) return std::nullopt;

  const Sample sample =
      WaveKeyDataset::make_sample(imu_out->linear_accel, rfid_out->processed, config);

  SeedPairResult result;
  if (service != nullptr) {
    const EncodedLatents enc = service->encode(sample.imu, sample.rfid);
    result.mobile_seed = make_key_seed(enc.mobile, quantizer);
    result.server_seed = make_key_seed(enc.server, quantizer);
    result.encode_hold_s = enc.hold_s;
    result.imu_encode_s = enc.imu_forward_s;
    result.rf_encode_s = enc.rf_forward_s;
    result.encode_batch = enc.batch_size;
  } else {
    result.mobile_seed = make_key_seed(encoders.imu_features(sample.imu), quantizer);
    result.server_seed = make_key_seed(encoders.rfid_features(sample.rfid), quantizer);
  }
  result.mismatch = result.mobile_seed.mismatch_ratio(result.server_seed);
  result.imu_start = imu_out->gesture_start_time;
  result.rfid_start = rfid_out->gesture_start_time;
  return result;
}

}  // namespace wavekey::core
