#pragma once

// Model persistence: bundles the trained encoder pair, the calibrated
// quantizer, and the calibrated eta into one file so that benches and
// examples share a single training run. The dataset itself is regenerated
// deterministically from its config when needed (simulation is cheap;
// training is what the cache amortizes).

#include <optional>
#include <string>

#include "core/system.hpp"

namespace wavekey::core {

/// Saves the system's trained state (encoders + quantizer + eta).
void save_system(const WaveKeySystem& system, const std::string& path);

/// Loads a system saved by save_system; returns nullopt when the file is
/// missing or malformed (caller then trains from scratch).
std::optional<WaveKeySystem> load_system(const std::string& path, const WaveKeyConfig& config);

/// One-stop entry used by benches/examples: loads the cached system at
/// `path` if present, otherwise generates the dataset, trains, calibrates,
/// and saves. Progress goes to stderr when `verbose`.
WaveKeySystem load_or_train(const std::string& path, const DatasetConfig& dataset_config,
                            const TrainConfig& train_config, const WaveKeyConfig& config,
                            bool verbose = true);

/// The canonical bench/example defaults: the model every table in
/// EXPERIMENTS.md is generated with.
DatasetConfig default_dataset_config();
TrainConfig default_train_config();

}  // namespace wavekey::core
