// SHA-NI SHA-256 compression (DESIGN.md §13.4): the x86 SHA extension runs
// two rounds per `sha256rnds2`, turning the 64-round scalar compression
// (~490 ns/block on the reference host) into ~16 instructions of real work
// (~40 ns/block). The message schedule is computed on the fly with
// `sha256msg1/sha256msg2`, so the kernel needs no 64-entry W buffer.
//
// State layout: the intrinsics want the eight working variables packed as
// two 128-bit lanes in (ABEF, CDGH) order; we convert from the byte-order
// independent state_[8] array at entry and back at exit, so the caller's
// representation is unchanged.
//
// This translation unit is compiled with -msha -msse4.1 on x86 (see
// src/crypto/CMakeLists.txt). On toolchains/targets without the extension
// the functions delegate to nothing — callers gate on
// runtime::cpu::sha_ni_active() before taking this path, and
// sha256_shani_compiled() tells tests whether the kernel exists at all.

#include "crypto/sha256.hpp"

#if defined(__SHA__) && defined(__SSE4_1__)
#include <immintrin.h>
#endif

namespace wavekey::crypto {

#if defined(__SHA__) && defined(__SSE4_1__)

bool sha256_shani_compiled() { return true; }

namespace {

alignas(16) constexpr std::uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
    0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
    0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
    0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
    0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
    0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
    0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
    0xc67178f2};

inline __m128i k_at(int i) {
  return _mm_load_si128(reinterpret_cast<const __m128i*>(kK + i));
}

}  // namespace

void sha256_process_blocks_shani(std::uint32_t state[8], const std::uint8_t* blocks,
                                 std::size_t nblocks) {
  // Big-endian load shuffle for 32-bit words within 128-bit lanes.
  const __m128i kBswap =
      _mm_set_epi8(12, 13, 14, 15, 8, 9, 10, 11, 4, 5, 6, 7, 0, 1, 2, 3);

  // Pack {a,b,c,d,e,f,g,h} into the (ABEF, CDGH) register layout.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));      // DCBA
  __m128i st1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));  // HGFE
  tmp = _mm_shuffle_epi32(tmp, 0xB1);                                          // CDAB
  st1 = _mm_shuffle_epi32(st1, 0x1B);                                          // EFGH
  __m128i abef = _mm_alignr_epi8(tmp, st1, 8);                                 // ABEF
  __m128i cdgh = _mm_blend_epi16(st1, tmp, 0xF0);                              // CDGH

  for (std::size_t b = 0; b < nblocks; ++b, blocks += 64) {
    const __m128i save_abef = abef;
    const __m128i save_cdgh = cdgh;

    __m128i msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 0)), kBswap);
    __m128i msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 16)), kBswap);
    __m128i msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 32)), kBswap);
    __m128i msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(blocks + 48)), kBswap);

    // Rounds 0-15 consume the raw message; every later 4-round step first
    // extends the schedule with sha256msg1/msg2 plus the alignr carry term.
    __m128i msg = _mm_add_epi32(msg0, k_at(0));
    cdgh = _mm_sha256rnds2_epu32(cdgh, abef, msg);
    abef = _mm_sha256rnds2_epu32(abef, cdgh, _mm_shuffle_epi32(msg, 0x0E));

    msg = _mm_add_epi32(msg1, k_at(4));
    cdgh = _mm_sha256rnds2_epu32(cdgh, abef, msg);
    abef = _mm_sha256rnds2_epu32(abef, cdgh, _mm_shuffle_epi32(msg, 0x0E));
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    msg = _mm_add_epi32(msg2, k_at(8));
    cdgh = _mm_sha256rnds2_epu32(cdgh, abef, msg);
    abef = _mm_sha256rnds2_epu32(abef, cdgh, _mm_shuffle_epi32(msg, 0x0E));
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    msg = _mm_add_epi32(msg3, k_at(12));
    cdgh = _mm_sha256rnds2_epu32(cdgh, abef, msg);
    abef = _mm_sha256rnds2_epu32(abef, cdgh, _mm_shuffle_epi32(msg, 0x0E));
    msg0 = _mm_add_epi32(_mm_sha256msg2_epu32(
                             _mm_add_epi32(msg0, _mm_alignr_epi8(msg3, msg2, 4)), msg3),
                         _mm_setzero_si128());
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16-63: four schedule registers rotate through extend + rounds.
    for (int i = 16; i < 64; i += 16) {
      msg = _mm_add_epi32(msg0, k_at(i));
      cdgh = _mm_sha256rnds2_epu32(cdgh, abef, msg);
      abef = _mm_sha256rnds2_epu32(abef, cdgh, _mm_shuffle_epi32(msg, 0x0E));
      msg1 = _mm_sha256msg2_epu32(_mm_add_epi32(msg1, _mm_alignr_epi8(msg0, msg3, 4)), msg0);
      msg3 = _mm_sha256msg1_epu32(msg3, msg0);

      msg = _mm_add_epi32(msg1, k_at(i + 4));
      cdgh = _mm_sha256rnds2_epu32(cdgh, abef, msg);
      abef = _mm_sha256rnds2_epu32(abef, cdgh, _mm_shuffle_epi32(msg, 0x0E));
      msg2 = _mm_sha256msg2_epu32(_mm_add_epi32(msg2, _mm_alignr_epi8(msg1, msg0, 4)), msg1);
      msg0 = _mm_sha256msg1_epu32(msg0, msg1);

      msg = _mm_add_epi32(msg2, k_at(i + 8));
      cdgh = _mm_sha256rnds2_epu32(cdgh, abef, msg);
      abef = _mm_sha256rnds2_epu32(abef, cdgh, _mm_shuffle_epi32(msg, 0x0E));
      msg3 = _mm_sha256msg2_epu32(_mm_add_epi32(msg3, _mm_alignr_epi8(msg2, msg1, 4)), msg2);
      msg1 = _mm_sha256msg1_epu32(msg1, msg2);

      msg = _mm_add_epi32(msg3, k_at(i + 12));
      cdgh = _mm_sha256rnds2_epu32(cdgh, abef, msg);
      abef = _mm_sha256rnds2_epu32(abef, cdgh, _mm_shuffle_epi32(msg, 0x0E));
      if (i + 16 < 64) {
        msg0 = _mm_sha256msg2_epu32(_mm_add_epi32(msg0, _mm_alignr_epi8(msg3, msg2, 4)),
                                    msg3);
        msg2 = _mm_sha256msg1_epu32(msg2, msg3);
      }
    }

    abef = _mm_add_epi32(abef, save_abef);
    cdgh = _mm_add_epi32(cdgh, save_cdgh);
  }

  // Unpack (ABEF, CDGH) back to {a..h}.
  __m128i t0 = _mm_shuffle_epi32(abef, 0x1B);  // FEBA
  __m128i t1 = _mm_shuffle_epi32(cdgh, 0xB1);  // DCHG
  const __m128i dcba = _mm_blend_epi16(t0, t1, 0xF0);
  const __m128i hgfe = _mm_alignr_epi8(t1, t0, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), dcba);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 4), hgfe);
}

#else  // !(__SHA__ && __SSE4_1__)

bool sha256_shani_compiled() { return false; }

void sha256_process_blocks_shani(std::uint32_t state[8], const std::uint8_t* blocks,
                                 std::size_t nblocks) {
  // Never reached: callers gate on sha_ni_active(), which is false when the
  // hardware (and therefore this build) lacks the extension.
  (void)state;
  (void)blocks;
  (void)nblocks;
}

#endif

}  // namespace wavekey::crypto
