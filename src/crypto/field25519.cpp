#include "crypto/field25519.hpp"

#include <stdexcept>

namespace wavekey::crypto {
namespace {

using u128 = unsigned __int128;

// p = 2^255 - 19, as limbs.
constexpr std::array<std::uint64_t, 4> kP = {0xFFFFFFFFFFFFFFEDULL, 0xFFFFFFFFFFFFFFFFULL,
                                             0xFFFFFFFFFFFFFFFFULL, 0x7FFFFFFFFFFFFFFFULL};

// Returns a >= b for 4-limb little-endian numbers.
bool geq(const std::array<std::uint64_t, 4>& a, const std::array<std::uint64_t, 4>& b) {
  for (int i = 3; i >= 0; --i) {
    if (a[i] != b[i]) return a[i] > b[i];
  }
  return true;
}

// a -= b, assuming a >= b.
void sub_in_place(std::array<std::uint64_t, 4>& a, const std::array<std::uint64_t, 4>& b) {
  std::uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 d = (u128)a[i] - b[i] - borrow;
    a[i] = static_cast<std::uint64_t>(d);
    borrow = (d >> 64) ? 1 : 0;  // two's complement high word nonzero => borrow
  }
}

}  // namespace

void Fe25519::reduce_once() {
  // limbs_ < 2^256; subtract p up to twice to canonicalize (value < 2p after
  // addition; < ~2.2p after multiplication folding).
  while (geq(limbs_, kP)) sub_in_place(limbs_, kP);
}

Fe25519 Fe25519::from_bytes(std::span<const std::uint8_t> bytes32) {
  if (bytes32.size() != 32) throw std::invalid_argument("Fe25519::from_bytes: need 32 bytes");
  Fe25519 r;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) v |= std::uint64_t{bytes32[i * 8 + b]} << (8 * b);
    r.limbs_[i] = v;
  }
  // Fold anything >= 2^255 back down: x = lo + 2^255*hi_bit -> lo + 19*hi_bit
  // is handled by the generic reduce (value < 2^256 < ~2p only if top bit
  // pattern small); do a full fold instead: treat as lo + 2^256*0, value may
  // be up to 2^256-1 < 4p + something; loop reduce.
  r.reduce_once();
  return r;
}

std::array<std::uint8_t, 32> Fe25519::to_bytes() const {
  std::array<std::uint8_t, 32> out;
  for (int i = 0; i < 4; ++i)
    for (int b = 0; b < 8; ++b)
      out[i * 8 + b] = static_cast<std::uint8_t>(limbs_[i] >> (8 * b));
  return out;
}

Fe25519 Fe25519::operator+(const Fe25519& o) const {
  Fe25519 r;
  std::uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 s = (u128)limbs_[i] + o.limbs_[i] + carry;
    r.limbs_[i] = static_cast<std::uint64_t>(s);
    carry = static_cast<std::uint64_t>(s >> 64);
  }
  // carry can be at most 1; 2^256 == 2*19 = 38 (mod p).
  if (carry) {
    std::uint64_t c2 = 38;
    for (int i = 0; i < 4 && c2; ++i) {
      const u128 s = (u128)r.limbs_[i] + c2;
      r.limbs_[i] = static_cast<std::uint64_t>(s);
      c2 = static_cast<std::uint64_t>(s >> 64);
    }
  }
  r.reduce_once();
  return r;
}

Fe25519 Fe25519::operator-(const Fe25519& o) const {
  // a - b = a + (p - b) mod p.
  std::array<std::uint64_t, 4> pb = kP;
  if (!o.is_zero()) sub_in_place(pb, o.limbs_);
  Fe25519 negated;
  negated.limbs_ = o.is_zero() ? std::array<std::uint64_t, 4>{0, 0, 0, 0} : pb;
  return *this + negated;
}

Fe25519 Fe25519::operator*(const Fe25519& o) const {
  // Schoolbook 4x4 multiply into 8 limbs.
  std::array<std::uint64_t, 8> t{};
  for (int i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 cur = (u128)limbs_[i] * o.limbs_[j] + t[i + j] + carry;
      t[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    t[i + 4] += carry;
  }

  // Fold the high 256 bits: 2^256 == 38 (mod p), so result = lo + 38*hi.
  Fe25519 r;
  std::uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 cur = (u128)t[i] + (u128)t[i + 4] * 38 + carry;
    r.limbs_[i] = static_cast<std::uint64_t>(cur);
    carry = static_cast<std::uint64_t>(cur >> 64);
  }
  // carry < 38; fold again: carry * 2^256 == carry * 38.
  if (carry) {
    u128 c2 = (u128)carry * 38;
    for (int i = 0; i < 4 && c2; ++i) {
      const u128 s = (u128)r.limbs_[i] + static_cast<std::uint64_t>(c2);
      r.limbs_[i] = static_cast<std::uint64_t>(s);
      c2 = (c2 >> 64) + (s >> 64);
    }
  }
  r.reduce_once();
  return r;
}

Fe25519 Fe25519::pow(std::span<const std::uint8_t> exponent32) const {
  if (exponent32.size() != 32) throw std::invalid_argument("Fe25519::pow: need 32-byte exponent");
  Fe25519 result = Fe25519::one();
  Fe25519 base = *this;
  for (std::size_t byte = 0; byte < 32; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      if ((exponent32[byte] >> bit) & 1) result = result * base;
      base = base * base;
    }
  }
  return result;
}

Fe25519 Fe25519::inverse() const {
  if (is_zero()) throw std::domain_error("Fe25519::inverse of zero");
  // p - 2 = 2^255 - 21.
  std::array<std::uint8_t, 32> e{};
  std::array<std::uint64_t, 4> pm2 = kP;
  pm2[0] -= 2;  // no borrow: low limb of p is ...ED >= 2
  for (int i = 0; i < 4; ++i)
    for (int b = 0; b < 8; ++b) e[i * 8 + b] = static_cast<std::uint8_t>(pm2[i] >> (8 * b));
  return pow(e);
}

std::string Fe25519::to_hex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string s;
  s.reserve(64);
  for (int i = 3; i >= 0; --i)
    for (int b = 15; b >= 0; --b) s.push_back(kHex[(limbs_[i] >> (4 * b)) & 0xF]);
  return s;
}

}  // namespace wavekey::crypto
