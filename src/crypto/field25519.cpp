#include "crypto/field25519.hpp"

#include <stdexcept>

namespace wavekey::crypto {
namespace {

using u128 = unsigned __int128;

// p = 2^255 - 19, as limbs.
constexpr std::array<std::uint64_t, 4> kP = {0xFFFFFFFFFFFFFFEDULL, 0xFFFFFFFFFFFFFFFFULL,
                                             0xFFFFFFFFFFFFFFFFULL, 0x7FFFFFFFFFFFFFFFULL};

// p - 1 = 2^255 - 20, the order of the multiplicative group Z_p^*.
constexpr std::array<std::uint64_t, 4> kPm1 = {0xFFFFFFFFFFFFFFECULL, 0xFFFFFFFFFFFFFFFFULL,
                                               0xFFFFFFFFFFFFFFFFULL, 0x7FFFFFFFFFFFFFFFULL};

// Returns a >= b for 4-limb little-endian numbers.
bool geq(const std::array<std::uint64_t, 4>& a, const std::array<std::uint64_t, 4>& b) {
  for (int i = 3; i >= 0; --i) {
    if (a[i] != b[i]) return a[i] > b[i];
  }
  return true;
}

// a -= b, assuming a >= b.
void sub_in_place(std::array<std::uint64_t, 4>& a, const std::array<std::uint64_t, 4>& b) {
  std::uint64_t borrow = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 d = (u128)a[i] - b[i] - borrow;
    a[i] = static_cast<std::uint64_t>(d);
    borrow = (d >> 64) ? 1 : 0;  // two's complement high word nonzero => borrow
  }
}

using Limbs = std::array<std::uint64_t, 4>;

// Folds a 512-bit product into 4 limbs using 2^256 == `fold` (mod m), where
// m is p (fold = 38) or p-1 (fold = 40). The result is < 2^256 and still
// needs the caller's final conditional subtractions.
std::array<std::uint64_t, 4> fold512(const std::array<std::uint64_t, 8>& t, std::uint64_t fold) {
  std::array<std::uint64_t, 4> r;
  std::uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 cur = (u128)t[i] + (u128)t[i + 4] * fold + carry;
    r[i] = static_cast<std::uint64_t>(cur);
    carry = static_cast<std::uint64_t>(cur >> 64);
  }
  // carry * 2^256 == carry * fold; loop until no carry escapes (at most
  // twice — magnitudes shrink geometrically).
  while (carry) {
    u128 c2 = (u128)carry * fold;
    carry = 0;
    for (int i = 0; i < 4 && c2; ++i) {
      const u128 s = (u128)r[i] + static_cast<std::uint64_t>(c2);
      r[i] = static_cast<std::uint64_t>(s);
      c2 = (c2 >> 64) + (s >> 64);
    }
    carry = static_cast<std::uint64_t>(c2);
  }
  return r;
}

// Schoolbook 4x4 multiply into 8 limbs — cold-path helper for the exponent
// arithmetic mod p-1 (the hot field paths use the column kernels below).
std::array<std::uint64_t, 8> mul_wide(const std::array<std::uint64_t, 4>& a,
                                      const std::array<std::uint64_t, 4>& b) {
  std::array<std::uint64_t, 8> t{};
  for (int i = 0; i < 4; ++i) {
    std::uint64_t carry = 0;
    for (int j = 0; j < 4; ++j) {
      const u128 cur = (u128)a[i] * b[j] + t[i + j] + carry;
      t[i + j] = static_cast<std::uint64_t>(cur);
      carry = static_cast<std::uint64_t>(cur >> 64);
    }
    t[i + 4] += carry;
  }
  return t;
}

// --- hot-path field kernels -------------------------------------------------
//
// mul_raw / sqr_raw are *column-wise* (Comba-style): all 64x64 partial
// products are formed independently, column sums are accumulated in 128-bit
// lanes (each sums at most 7 sub-2^64 terms, no overflow), and a single
// carry sweep plus a fused 2^256==38 fold produce the result. Unlike the
// row-major schoolbook, nothing serializes on per-product carries, so the
// multiplies pipeline — this is the latency that bounds every
// exponentiation (255 dependent squarings per pow).
//
// Contract: inputs are any values < 2^256 congruent to the intended field
// element; the result is again < 2^256 and congruent mod p but NOT
// canonical. Exponentiation ladders stay in this relaxed representation and
// canonicalize once at the end (reduce_once), instead of paying the
// conditional subtractions on every step.

// Carry-sweeps eight 128-bit column sums into 8 limbs, then folds mod p.
inline Limbs sweep_and_fold(u128 c0, u128 c1, u128 c2, u128 c3, u128 c4, u128 c5, u128 c6,
                            u128 c7) {
  std::uint64_t t[8];
  u128 acc = c0;
  t[0] = static_cast<std::uint64_t>(acc);
  acc = c1 + (acc >> 64);
  t[1] = static_cast<std::uint64_t>(acc);
  acc = c2 + (acc >> 64);
  t[2] = static_cast<std::uint64_t>(acc);
  acc = c3 + (acc >> 64);
  t[3] = static_cast<std::uint64_t>(acc);
  acc = c4 + (acc >> 64);
  t[4] = static_cast<std::uint64_t>(acc);
  acc = c5 + (acc >> 64);
  t[5] = static_cast<std::uint64_t>(acc);
  acc = c6 + (acc >> 64);
  t[6] = static_cast<std::uint64_t>(acc);
  acc = c7 + (acc >> 64);
  t[7] = static_cast<std::uint64_t>(acc);

  Limbs r;
  u128 f = (u128)t[0] + (u128)t[4] * 38;
  r[0] = static_cast<std::uint64_t>(f);
  f = (u128)t[1] + (u128)t[5] * 38 + (f >> 64);
  r[1] = static_cast<std::uint64_t>(f);
  f = (u128)t[2] + (u128)t[6] * 38 + (f >> 64);
  r[2] = static_cast<std::uint64_t>(f);
  f = (u128)t[3] + (u128)t[7] * 38 + (f >> 64);
  r[3] = static_cast<std::uint64_t>(f);
  std::uint64_t carry = static_cast<std::uint64_t>(f >> 64);
  while (carry) {
    u128 c = (u128)carry * 38;
    carry = 0;
    for (int i = 0; i < 4 && c; ++i) {
      const u128 s = (u128)r[i] + static_cast<std::uint64_t>(c);
      r[i] = static_cast<std::uint64_t>(s);
      c = (c >> 64) + (s >> 64);
    }
    carry = static_cast<std::uint64_t>(c);
  }
  return r;
}

inline std::uint64_t lo(u128 v) { return static_cast<std::uint64_t>(v); }
inline std::uint64_t hi(u128 v) { return static_cast<std::uint64_t>(v >> 64); }

inline Limbs mul_raw(const Limbs& a, const Limbs& b) {
  const u128 p00 = (u128)a[0] * b[0], p01 = (u128)a[0] * b[1], p02 = (u128)a[0] * b[2],
             p03 = (u128)a[0] * b[3];
  const u128 p10 = (u128)a[1] * b[0], p11 = (u128)a[1] * b[1], p12 = (u128)a[1] * b[2],
             p13 = (u128)a[1] * b[3];
  const u128 p20 = (u128)a[2] * b[0], p21 = (u128)a[2] * b[1], p22 = (u128)a[2] * b[2],
             p23 = (u128)a[2] * b[3];
  const u128 p30 = (u128)a[3] * b[0], p31 = (u128)a[3] * b[1], p32 = (u128)a[3] * b[2],
             p33 = (u128)a[3] * b[3];
  return sweep_and_fold(
      lo(p00), (u128)lo(p01) + lo(p10) + hi(p00), (u128)lo(p02) + lo(p11) + lo(p20) + hi(p01) + hi(p10),
      (u128)lo(p03) + lo(p12) + lo(p21) + lo(p30) + hi(p02) + hi(p11) + hi(p20),
      (u128)lo(p13) + lo(p22) + lo(p31) + hi(p03) + hi(p12) + hi(p21) + hi(p30),
      (u128)lo(p23) + lo(p32) + hi(p13) + hi(p22) + hi(p31), (u128)lo(p33) + hi(p23) + hi(p32),
      hi(p33));
}

inline Limbs sqr_raw(const Limbs& a) {
  // 6 off-diagonal products doubled in the column sums + 4 diagonals:
  // 10 multiplies instead of 16.
  const u128 p01 = (u128)a[0] * a[1], p02 = (u128)a[0] * a[2], p03 = (u128)a[0] * a[3];
  const u128 p12 = (u128)a[1] * a[2], p13 = (u128)a[1] * a[3], p23 = (u128)a[2] * a[3];
  const u128 d0 = (u128)a[0] * a[0], d1 = (u128)a[1] * a[1], d2 = (u128)a[2] * a[2],
             d3 = (u128)a[3] * a[3];
  return sweep_and_fold(lo(d0), 2 * ((u128)lo(p01)) + hi(d0),
                        2 * ((u128)lo(p02) + hi(p01)) + lo(d1),
                        2 * ((u128)lo(p03) + lo(p12) + hi(p02)) + hi(d1),
                        2 * ((u128)lo(p13) + hi(p03) + hi(p12)) + lo(d2),
                        2 * ((u128)lo(p23) + hi(p13)) + hi(d2), 2 * ((u128)hi(p23)) + lo(d3),
                        hi(d3));
}

std::array<std::uint64_t, 4> limbs_from_bytes(std::span<const std::uint8_t> bytes32) {
  std::array<std::uint64_t, 4> r;
  for (int i = 0; i < 4; ++i) {
    std::uint64_t v = 0;
    for (int b = 0; b < 8; ++b) v |= std::uint64_t{bytes32[i * 8 + b]} << (8 * b);
    r[i] = v;
  }
  return r;
}

std::array<std::uint8_t, 32> bytes_from_limbs(const std::array<std::uint64_t, 4>& limbs) {
  std::array<std::uint8_t, 32> out;
  for (int i = 0; i < 4; ++i)
    for (int b = 0; b < 8; ++b) out[i * 8 + b] = static_cast<std::uint8_t>(limbs[i] >> (8 * b));
  return out;
}

}  // namespace

void Fe25519::reduce_once() {
  // Canonicalizes any value < 2^256. Since 2^256 = 2p + 38, at most two
  // conditional subtractions are ever taken; every internal path (addition
  // carry fold, 512-bit product fold) feeds values below that bound.
  while (geq(limbs_, kP)) sub_in_place(limbs_, kP);
}

Fe25519 Fe25519::from_bytes(std::span<const std::uint8_t> bytes32) {
  if (bytes32.size() != 32) throw std::invalid_argument("Fe25519::from_bytes: need 32 bytes");
  Fe25519 r;
  r.limbs_ = limbs_from_bytes(bytes32);
  // The raw value is < 2^256 = 2p + 38, so reduce_once canonicalizes it
  // with at most two subtractions of p.
  r.reduce_once();
  return r;
}

std::array<std::uint8_t, 32> Fe25519::to_bytes() const { return bytes_from_limbs(limbs_); }

Fe25519 Fe25519::operator+(const Fe25519& o) const {
  Fe25519 r;
  std::uint64_t carry = 0;
  for (int i = 0; i < 4; ++i) {
    const u128 s = (u128)limbs_[i] + o.limbs_[i] + carry;
    r.limbs_[i] = static_cast<std::uint64_t>(s);
    carry = static_cast<std::uint64_t>(s >> 64);
  }
  // carry can be at most 1; 2^256 == 2*19 = 38 (mod p).
  if (carry) {
    std::uint64_t c2 = 38;
    for (int i = 0; i < 4 && c2; ++i) {
      const u128 s = (u128)r.limbs_[i] + c2;
      r.limbs_[i] = static_cast<std::uint64_t>(s);
      c2 = static_cast<std::uint64_t>(s >> 64);
    }
  }
  r.reduce_once();
  return r;
}

Fe25519 Fe25519::operator-(const Fe25519& o) const {
  // a - b = a + (p - b) mod p.
  std::array<std::uint64_t, 4> pb = kP;
  if (!o.is_zero()) sub_in_place(pb, o.limbs_);
  Fe25519 negated;
  negated.limbs_ = o.is_zero() ? std::array<std::uint64_t, 4>{0, 0, 0, 0} : pb;
  return *this + negated;
}

Fe25519 Fe25519::operator*(const Fe25519& o) const {
  Fe25519 r;
  r.limbs_ = mul_raw(limbs_, o.limbs_);
  r.reduce_once();
  return r;
}

Fe25519 Fe25519::square() const {
  Fe25519 r;
  r.limbs_ = sqr_raw(limbs_);
  r.reduce_once();
  return r;
}

Fe25519 Fe25519::pow(std::span<const std::uint8_t> exponent32) const {
  if (exponent32.size() != 32) throw std::invalid_argument("Fe25519::pow: need 32-byte exponent");
  const auto bit = [&](int i) { return (exponent32[i >> 3] >> (i & 7)) & 1; };
  int top = 255;
  while (top >= 0 && !bit(top)) --top;
  if (top < 0) return Fe25519::one();

  // Odd powers x^1, x^3, ..., x^15 — everything a 4-bit window can need.
  // The whole ladder runs on the relaxed (< 2^256) representation and
  // canonicalizes once at the end.
  Limbs odd[8];
  odd[0] = limbs_;
  const Limbs x2 = sqr_raw(limbs_);
  for (int i = 1; i < 8; ++i) odd[i] = mul_raw(odd[i - 1], x2);

  // MSB-first sliding window: skip zero runs with plain squarings; on a set
  // bit, greedily take the longest window (<= 4 bits) ending in a set bit so
  // the multiplier is an odd power from the table.
  Limbs result = {1, 0, 0, 0};
  int i = top;
  while (i >= 0) {
    if (!bit(i)) {
      result = sqr_raw(result);
      --i;
      continue;
    }
    int l = i >= 3 ? i - 3 : 0;
    while (!bit(l)) ++l;
    int w = 0;
    for (int j = i; j >= l; --j) w = (w << 1) | bit(j);
    for (int j = 0; j <= i - l; ++j) result = sqr_raw(result);
    result = mul_raw(result, odd[(w - 1) >> 1]);
    i = l - 1;
  }
  Fe25519 r;
  r.limbs_ = result;
  r.reduce_once();
  return r;
}

Fe25519 Fe25519::pow_schoolbook(std::span<const std::uint8_t> exponent32) const {
  if (exponent32.size() != 32)
    throw std::invalid_argument("Fe25519::pow_schoolbook: need 32-byte exponent");
  Fe25519 result = Fe25519::one();
  Fe25519 base = *this;
  for (std::size_t byte = 0; byte < 32; ++byte) {
    for (int bit = 0; bit < 8; ++bit) {
      if ((exponent32[byte] >> bit) & 1) result = result * base;
      base = base * base;
    }
  }
  return result;
}

Fe25519 Fe25519::generator_pow(std::span<const std::uint8_t> exponent32) {
  if (exponent32.size() != 32)
    throw std::invalid_argument("Fe25519::generator_pow: need 32-byte exponent");
  // Comb table over the fixed base g: row i holds g^(v * 2^(8i)) for every
  // byte value v, so g^e is the product of one entry per exponent byte —
  // no squarings at all. Built once (thread-safe magic static), 32*256
  // elements = 256 KiB.
  struct CombTable {
    std::array<std::array<Fe25519, 256>, 32> row;
    CombTable() {
      Fe25519 base = generator();  // g^(2^(8i)) for the current row
      for (int i = 0; i < 32; ++i) {
        row[i][0] = Fe25519::one();
        for (int v = 1; v < 256; ++v) row[i][v] = row[i][v - 1] * base;
        if (i + 1 < 32) {
          for (int s = 0; s < 8; ++s) base = base.square();
        }
      }
    }
  };
  static const CombTable table;

  Limbs result = table.row[0][exponent32[0]].limbs_;
  for (int i = 1; i < 32; ++i) {
    const std::uint8_t v = exponent32[i];
    if (v != 0) result = mul_raw(result, table.row[i][v].limbs_);
  }
  Fe25519 r;
  r.limbs_ = result;
  r.reduce_once();
  return r;
}

Fe25519 Fe25519::inverse() const {
  if (is_zero()) throw std::domain_error("Fe25519::inverse of zero");
  // x^(p-2) = x^(2^255 - 21) via the standard curve25519 addition chain:
  // 254 squarings + 11 multiplies (the schoolbook ladder needs ~255 + ~254).
  // Runs entirely on the relaxed representation, canonicalized at the end.
  const auto pow2k = [](Limbs v, int k) {
    for (int i = 0; i < k; ++i) v = sqr_raw(v);
    return v;
  };
  const Limbs& z = limbs_;
  const Limbs z2 = sqr_raw(z);                                   // 2
  const Limbs z9 = mul_raw(pow2k(z2, 2), z);                     // 9
  const Limbs z11 = mul_raw(z9, z2);                             // 11
  const Limbs z2_5_0 = mul_raw(sqr_raw(z11), z9);                // 2^5 - 2^0
  const Limbs z2_10_0 = mul_raw(pow2k(z2_5_0, 5), z2_5_0);       // 2^10 - 2^0
  const Limbs z2_20_0 = mul_raw(pow2k(z2_10_0, 10), z2_10_0);    // 2^20 - 2^0
  const Limbs z2_40_0 = mul_raw(pow2k(z2_20_0, 20), z2_20_0);    // 2^40 - 2^0
  const Limbs z2_50_0 = mul_raw(pow2k(z2_40_0, 10), z2_10_0);    // 2^50 - 2^0
  const Limbs z2_100_0 = mul_raw(pow2k(z2_50_0, 50), z2_50_0);   // 2^100 - 2^0
  const Limbs z2_200_0 = mul_raw(pow2k(z2_100_0, 100), z2_100_0);  // 2^200 - 2^0
  const Limbs z2_250_0 = mul_raw(pow2k(z2_200_0, 50), z2_50_0);    // 2^250 - 2^0
  Fe25519 r;
  r.limbs_ = mul_raw(pow2k(z2_250_0, 5), z11);  // 2^255 - 2^5 + 11 = 2^255 - 21
  r.reduce_once();
  return r;
}

std::array<std::uint8_t, 32> Fe25519::exp_mul_mod_p_minus_1(std::span<const std::uint8_t> a32,
                                                            std::span<const std::uint8_t> b32) {
  if (a32.size() != 32 || b32.size() != 32)
    throw std::invalid_argument("Fe25519::exp_mul_mod_p_minus_1: need 32-byte exponents");
  // 2^255 == 20 (mod p-1), hence 2^256 == 40: same fold shape as the field
  // reduction, different constant.
  std::array<std::uint64_t, 4> r =
      fold512(mul_wide(limbs_from_bytes(a32), limbs_from_bytes(b32)), 40);
  while (geq(r, kPm1)) sub_in_place(r, kPm1);
  return bytes_from_limbs(r);
}

std::array<std::uint8_t, 32> Fe25519::exp_neg_mod_p_minus_1(std::span<const std::uint8_t> a32) {
  if (a32.size() != 32)
    throw std::invalid_argument("Fe25519::exp_neg_mod_p_minus_1: need 32-byte exponent");
  std::array<std::uint64_t, 4> a = limbs_from_bytes(a32);
  while (geq(a, kPm1)) sub_in_place(a, kPm1);
  if ((a[0] | a[1] | a[2] | a[3]) == 0) return bytes_from_limbs(a);  // -0 == 0
  std::array<std::uint64_t, 4> r = kPm1;
  sub_in_place(r, a);
  return bytes_from_limbs(r);
}

std::string Fe25519::to_hex() const {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string s;
  s.reserve(64);
  for (int i = 3; i >= 0; --i)
    for (int b = 15; b >= 0; --b) s.push_back(kHex[(limbs_[i] >> (4 * b)) & 0xF]);
  return s;
}

}  // namespace wavekey::crypto
