#include "crypto/oblivious_transfer.hpp"

#include <stdexcept>

#include "crypto/sha256.hpp"
#include "crypto/stream_cipher.hpp"

namespace wavekey::crypto {
namespace {

std::array<std::uint8_t, 32> draw_exponent(Drbg& rng) {
  std::array<std::uint8_t, 32> e;
  rng.random_bytes(e);
  // Clear the top bit so the exponent is < 2^255; uniform enough over the
  // (p-1)-order group for this protocol.
  e[31] &= 0x7F;
  return e;
}

}  // namespace

Bytes ot_derive_key(const Fe25519& element) {
  const auto bytes = element.to_bytes();
  const Digest256 d = Sha256::hash(bytes);
  return Bytes(d.begin(), d.end());
}

OtSender::OtSender(Drbg& rng) : a_(draw_exponent(rng)) {
  ma_ = Fe25519::generator_pow(a_);
  // Exponent arithmetic mod the group order p-1 is valid for any nonzero
  // base (Fermat), so -a^2 collapses to a single fixed-base exponentiation.
  k1_factor_ = Fe25519::generator_pow(
      Fe25519::exp_neg_mod_p_minus_1(Fe25519::exp_mul_mod_p_minus_1(a_, a_)));
}

std::pair<Bytes, Bytes> OtSender::encrypt(const Fe25519& mb,
                                          std::span<const std::uint8_t> secret0,
                                          std::span<const std::uint8_t> secret1) const {
  if (mb.is_zero()) throw std::invalid_argument("OtSender::encrypt: zero M_b");
  // (M_b / M_a)^a = M_b^a * g^(-a^2): the whole call costs one variable-base
  // exponentiation plus one multiply (k1_factor_ is precomputed in the
  // constructor).
  const Fe25519 k0_elem = mb.pow(a_);
  const Fe25519 k1_elem = k0_elem * k1_factor_;
  const Bytes k0 = ot_derive_key(k0_elem);
  const Bytes k1 = ot_derive_key(k1_elem);
  return {stream_crypt(k0, secret0), stream_crypt(k1, secret1)};
}

OtReceiver::OtReceiver(Drbg& rng, bool choice, const Fe25519& ma)
    : choice_(choice), b_(draw_exponent(rng)), ma_(ma) {
  if (ma.is_zero()) throw std::invalid_argument("OtReceiver: zero M_a");
  const Fe25519 gb = Fe25519::generator_pow(b_);
  mb_ = choice_ ? ma_ * gb : gb;
}

Bytes OtReceiver::decrypt(const std::pair<Bytes, Bytes>& ciphertexts) const {
  const Bytes k = ot_derive_key(ma_.pow(b_));
  const Bytes& chosen = choice_ ? ciphertexts.second : ciphertexts.first;
  return stream_crypt(k, chosen);
}

}  // namespace wavekey::crypto
