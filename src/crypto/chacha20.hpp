#pragma once

// ChaCha20 block function (RFC 8439) — the keystream generator behind the
// library's CSPRNG and the hash-stream cipher's nonce expansion.

#include <array>
#include <cstdint>
#include <span>

namespace wavekey::crypto {

/// Raw ChaCha20 keystream generator.
class ChaCha20 {
 public:
  /// @param key    32 bytes
  /// @param nonce  12 bytes
  /// @param counter initial 32-bit block counter
  ChaCha20(std::span<const std::uint8_t> key, std::span<const std::uint8_t> nonce,
           std::uint32_t counter = 0);

  /// Produces the next keystream bytes (any length; spans blocks as needed).
  void keystream(std::span<std::uint8_t> out);

  /// XORs `data` in place with the keystream (encrypt == decrypt).
  void crypt(std::span<std::uint8_t> data);

 private:
  void refill();

  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, 64> block_;
  std::size_t block_pos_ = 64;  // empty
};

}  // namespace wavekey::crypto
