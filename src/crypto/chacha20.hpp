#pragma once

// ChaCha20 block function (RFC 8439) — the keystream generator behind the
// library's CSPRNG and the hash-stream cipher's nonce expansion.
//
// Bulk requests (whole 64-byte blocks) bypass the internal block buffer and
// run a multi-block kernel selected through runtime::cpu::active_tier():
// a 4-block AVX2 kernel (two blocks per 256-bit row vector), a single-block
// SSE2 row kernel, or the portable scalar block. All tiers produce the
// identical RFC 8439 keystream — the integer datapath is exact — which the
// SIMD sweep tests assert byte-for-byte.

#include <array>
#include <cstdint>
#include <span>

namespace wavekey::crypto {

/// Raw ChaCha20 keystream generator.
class ChaCha20 {
 public:
  /// @param key    32 bytes
  /// @param nonce  12 bytes
  /// @param counter initial 32-bit block counter
  ChaCha20(std::span<const std::uint8_t> key, std::span<const std::uint8_t> nonce,
           std::uint32_t counter = 0);

  /// Produces the next keystream bytes (any length; spans blocks as needed).
  void keystream(std::span<std::uint8_t> out);

  /// XORs `data` in place with the keystream (encrypt == decrypt).
  void crypt(std::span<std::uint8_t> data);

 private:
  void refill();
  // Writes `nblocks` keystream blocks to `out` (tier-dispatched) and
  // advances the block counter.
  void generate_blocks(std::uint8_t* out, std::size_t nblocks);

  std::array<std::uint32_t, 16> state_;
  std::array<std::uint8_t, 64> block_;
  std::size_t block_pos_ = 64;  // empty
};

// Tier-explicit block kernels: write `nblocks` consecutive keystream blocks
// (64 bytes each) for the given state, with block b using counter
// state[12] + b (mod 2^32). The state itself is not modified. Exported for
// differential tests and the bench self-check; the *_avx2/_sse2 kernels
// must only be invoked when runtime::cpu::detected_tier() allows (they
// delegate down when the translation unit is built without the ISA).
void chacha20_blocks_scalar(const std::uint32_t state[16], std::uint8_t* out,
                            std::size_t nblocks);
void chacha20_blocks_sse2(const std::uint32_t state[16], std::uint8_t* out,
                          std::size_t nblocks);
void chacha20_blocks_avx2(const std::uint32_t state[16], std::uint8_t* out,
                          std::size_t nblocks);

}  // namespace wavekey::crypto
