#include "crypto/hmac.hpp"

namespace wavekey::crypto {

Digest256 hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> data) {
  constexpr std::size_t kBlock = 64;
  std::vector<std::uint8_t> k(kBlock, 0);
  if (key.size() > kBlock) {
    const Digest256 kh = Sha256::hash(key);
    std::copy(kh.begin(), kh.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }

  std::vector<std::uint8_t> ipad(kBlock), opad(kBlock);
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.update(ipad).update(data);
  const Digest256 inner_digest = inner.finalize();

  Sha256 outer;
  outer.update(opad).update(inner_digest);
  return outer.finalize();
}

bool digest_equal(const Digest256& a, const Digest256& b) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return diff == 0;
}

}  // namespace wavekey::crypto
