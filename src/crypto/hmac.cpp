#include "crypto/hmac.hpp"

#include <array>
#include <cstring>

namespace wavekey::crypto {

namespace {

Digest256 hmac_impl(std::span<const std::uint8_t> key, std::span<const std::uint8_t> data,
                    bool force_portable) {
  // Hot path of vault authorization: everything lives on the stack. The
  // three per-call heap vectors the original implementation allocated cost
  // more than a SHA-NI compression round.
  constexpr std::size_t kBlock = 64;
  std::array<std::uint8_t, kBlock> k{};
  if (key.size() > kBlock) {
    Sha256 kh(force_portable);
    kh.update(key);
    const Digest256 khd = kh.finalize();
    std::memcpy(k.data(), khd.data(), khd.size());
  } else if (!key.empty()) {
    std::memcpy(k.data(), key.data(), key.size());
  }

  std::array<std::uint8_t, kBlock> ipad, opad;
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }

  Sha256 inner(force_portable);
  inner.update(ipad).update(data);
  const Digest256 inner_digest = inner.finalize();

  Sha256 outer(force_portable);
  outer.update(opad).update(inner_digest);
  return outer.finalize();
}

}  // namespace

Digest256 hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> data) {
  return hmac_impl(key, data, /*force_portable=*/false);
}

Digest256 hmac_sha256_portable(std::span<const std::uint8_t> key,
                               std::span<const std::uint8_t> data) {
  return hmac_impl(key, data, /*force_portable=*/true);
}

bool digest_equal(const Digest256& a, const Digest256& b) {
  std::uint8_t diff = 0;
  for (std::size_t i = 0; i < a.size(); ++i) diff |= static_cast<std::uint8_t>(a[i] ^ b[i]);
  return diff == 0;
}

}  // namespace wavekey::crypto
