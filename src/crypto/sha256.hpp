#pragma once

// SHA-256 (FIPS 180-4), implemented from scratch. Used as the hash H(.) in
// the OT protocol, inside HMAC for the key-confirmation step, and to derive
// stream-cipher keystreams.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace wavekey::crypto {

using Digest256 = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256();

  /// A hasher pinned to the portable (scalar) compression kernel regardless
  /// of CPU features — for in-process differentials against the SHA-NI path
  /// and for benchmarks that model the pre-accelerated pipeline.
  explicit Sha256(bool force_portable);

  /// Absorbs more input.
  Sha256& update(std::span<const std::uint8_t> data);

  /// Finalizes and returns the digest. The hasher must not be updated after
  /// finalizing; call reset() to reuse.
  Digest256 finalize();

  /// Restores the initial state.
  void reset();

  /// One-shot convenience.
  static Digest256 hash(std::span<const std::uint8_t> data);

 private:
  void process_blocks(const std::uint8_t* blocks, std::size_t nblocks);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finalized_ = false;
  bool force_portable_ = false;
};

/// SHA-NI block compression kernel (sha256_shani.cpp, compiled with -msha on
/// x86). Runs `nblocks` 64-byte blocks through the FIPS 180-4 compression,
/// updating `state` in place. Callers must gate on
/// runtime::cpu::sha_ni_active(); Sha256 does this internally.
void sha256_process_blocks_shani(std::uint32_t state[8], const std::uint8_t* blocks,
                                 std::size_t nblocks);

/// True iff the SHA-NI kernel was compiled into this binary (x86 toolchain
/// with -msha support). Hardware/runtime gating is separate: see
/// runtime::cpu::sha_ni_active().
bool sha256_shani_compiled();

}  // namespace wavekey::crypto
