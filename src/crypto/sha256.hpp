#pragma once

// SHA-256 (FIPS 180-4), implemented from scratch. Used as the hash H(.) in
// the OT protocol, inside HMAC for the key-confirmation step, and to derive
// stream-cipher keystreams.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace wavekey::crypto {

using Digest256 = std::array<std::uint8_t, 32>;

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256();

  /// Absorbs more input.
  Sha256& update(std::span<const std::uint8_t> data);

  /// Finalizes and returns the digest. The hasher must not be updated after
  /// finalizing; call reset() to reuse.
  Digest256 finalize();

  /// Restores the initial state.
  void reset();

  /// One-shot convenience.
  static Digest256 hash(std::span<const std::uint8_t> data);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
  bool finalized_ = false;
};

}  // namespace wavekey::crypto
