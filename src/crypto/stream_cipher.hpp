#pragma once

// The symmetric encryption E(m, k) used inside the OT protocol (Fig. 3):
// each OT pad x_i^b is encrypted under a hash-derived key. We expand the key
// into a keystream with SHA-256 in counter mode and XOR — a one-time-pad
// style construction, safe here because every key is a fresh DH-derived
// secret used exactly once.

#include <cstdint>
#include <span>
#include <vector>

namespace wavekey::crypto {

/// XORs `message` with a keystream derived as SHA256(key || counter_be32)
/// blocks. Encryption and decryption are the same operation.
std::vector<std::uint8_t> stream_crypt(std::span<const std::uint8_t> key,
                                       std::span<const std::uint8_t> message);

}  // namespace wavekey::crypto
