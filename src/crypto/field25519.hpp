#pragma once

// Arithmetic in the prime field F_p with p = 2^255 - 19.
//
// The paper's OT (Fig. 3) performs modular exponentiations g^a mod u for a
// large prime u. We instantiate u with the Mersenne-like curve25519 prime:
// its special form makes reduction a couple of carry chains instead of a
// general bignum division, which keeps this dependency-free implementation
// small and fast. The OT code is written against this type but is otherwise
// group-generic.

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace wavekey::crypto {

/// An element of F_{2^255-19}, stored as four 64-bit little-endian limbs in
/// canonical (fully reduced) form after every public operation.
class Fe25519 {
 public:
  /// Zero element.
  constexpr Fe25519() = default;

  /// Small-integer constructor.
  explicit Fe25519(std::uint64_t v) : limbs_{v, 0, 0, 0} {}

  /// Interprets 32 little-endian bytes, reducing mod p.
  static Fe25519 from_bytes(std::span<const std::uint8_t> bytes32);

  /// Canonical 32-byte little-endian encoding.
  std::array<std::uint8_t, 32> to_bytes() const;

  /// The fixed generator used by the OT protocol.
  static Fe25519 generator() { return Fe25519(5); }

  static Fe25519 zero() { return Fe25519(); }
  static Fe25519 one() { return Fe25519(1); }

  bool is_zero() const { return (limbs_[0] | limbs_[1] | limbs_[2] | limbs_[3]) == 0; }
  bool operator==(const Fe25519&) const = default;

  Fe25519 operator+(const Fe25519& o) const;
  Fe25519 operator-(const Fe25519& o) const;
  Fe25519 operator*(const Fe25519& o) const;

  /// Modular exponentiation with a 256-bit exponent (32 little-endian bytes).
  Fe25519 pow(std::span<const std::uint8_t> exponent32) const;

  /// Multiplicative inverse via Fermat (x^(p-2)). Throws std::domain_error
  /// on zero.
  Fe25519 inverse() const;

  /// Hex string (big-endian, for debugging/tests).
  std::string to_hex() const;

 private:
  void reduce_once();

  std::array<std::uint64_t, 4> limbs_{0, 0, 0, 0};
};

}  // namespace wavekey::crypto
