#pragma once

// Arithmetic in the prime field F_p with p = 2^255 - 19.
//
// The paper's OT (Fig. 3) performs modular exponentiations g^a mod u for a
// large prime u. We instantiate u with the Mersenne-like curve25519 prime:
// its special form makes reduction a couple of carry chains instead of a
// general bignum division, which keeps this dependency-free implementation
// small and fast. The OT code is written against this type but is otherwise
// group-generic.
//
// Exponentiation tiers (fastest applicable wins; all compared against
// pow_schoolbook in crypto_test):
//   * generator_pow   — fixed-base radix-2^8 comb table for g = 5: 32 table
//                       lookups and <= 31 multiplies, no squarings.
//   * pow             — variable base, 4-bit sliding window over a dedicated
//                       squaring kernel (~255 squarings + ~60 multiplies vs
//                       ~255 + ~128 for the schoolbook ladder).
//   * inverse         — fixed exponent p-2 via the standard curve25519
//                       addition chain (254 squarings + 11 multiplies).
// The exp_*_mod_p_minus_1 helpers do exponent arithmetic mod the group
// order p-1 (valid for any nonzero base by Fermat), which lets callers
// collapse chains like (g^a)^b or x^-a into a single exponentiation.

#include <array>
#include <cstdint>
#include <span>
#include <string>

namespace wavekey::crypto {

/// An element of F_{2^255-19}, stored as four 64-bit little-endian limbs in
/// canonical (fully reduced) form after every public operation.
class Fe25519 {
 public:
  /// Zero element.
  constexpr Fe25519() = default;

  /// Small-integer constructor.
  explicit Fe25519(std::uint64_t v) : limbs_{v, 0, 0, 0} {}

  /// Interprets 32 little-endian bytes, reducing mod p.
  static Fe25519 from_bytes(std::span<const std::uint8_t> bytes32);

  /// Canonical 32-byte little-endian encoding.
  std::array<std::uint8_t, 32> to_bytes() const;

  /// The fixed generator used by the OT protocol.
  static Fe25519 generator() { return Fe25519(5); }

  static Fe25519 zero() { return Fe25519(); }
  static Fe25519 one() { return Fe25519(1); }

  bool is_zero() const { return (limbs_[0] | limbs_[1] | limbs_[2] | limbs_[3]) == 0; }
  bool operator==(const Fe25519&) const = default;

  Fe25519 operator+(const Fe25519& o) const;
  Fe25519 operator-(const Fe25519& o) const;
  Fe25519 operator*(const Fe25519& o) const;

  /// x^2. Dedicated kernel: the 6 off-diagonal 64x64 products are computed
  /// once and doubled instead of twice (10 multiplies vs operator*'s 16).
  Fe25519 square() const;

  /// Modular exponentiation with a 256-bit exponent (32 little-endian
  /// bytes): 4-bit sliding window over an 8-entry odd-power table.
  Fe25519 pow(std::span<const std::uint8_t> exponent32) const;

  /// Bit-at-a-time square-and-multiply ladder — retained as the executable
  /// reference implementation that pow / generator_pow / inverse are tested
  /// against.
  Fe25519 pow_schoolbook(std::span<const std::uint8_t> exponent32) const;

  /// g^e for the fixed generator(), via a lazily built 32x256 radix-2^8
  /// comb table (g^(v * 2^(8i)) for every byte position i and byte value v;
  /// 256 KiB, built once per process): <= 31 multiplies and no squarings
  /// per call.
  static Fe25519 generator_pow(std::span<const std::uint8_t> exponent32);

  /// Multiplicative inverse x^(p-2) via the standard curve25519 addition
  /// chain (254 squarings + 11 multiplies). Throws std::domain_error on
  /// zero.
  Fe25519 inverse() const;

  /// a * b mod (p-1) on 32-byte little-endian exponents. Exponents of any
  /// nonzero base may be reduced mod p-1 (Fermat: x^(p-1) = 1), so
  /// (x^a)^b == x^exp_mul_mod_p_minus_1(a, b).
  static std::array<std::uint8_t, 32> exp_mul_mod_p_minus_1(
      std::span<const std::uint8_t> a32, std::span<const std::uint8_t> b32);

  /// (p-1) - (a mod p-1), the exponent of the inverse power:
  /// x^exp_neg_mod_p_minus_1(a) == (x^a)^-1 for nonzero x.
  static std::array<std::uint8_t, 32> exp_neg_mod_p_minus_1(std::span<const std::uint8_t> a32);

  /// Hex string (big-endian, for debugging/tests).
  std::string to_hex() const;

 private:
  void reduce_once();

  std::array<std::uint64_t, 4> limbs_{0, 0, 0, 0};
};

}  // namespace wavekey::crypto
