#include "crypto/drbg.hpp"

#include <random>

#include "crypto/sha256.hpp"

namespace wavekey::crypto {
namespace {

constexpr std::uint8_t kZeroNonce[12] = {};

std::array<std::uint8_t, 32> entropy_key() {
  std::random_device rd;
  std::array<std::uint8_t, 64> raw;
  for (std::size_t i = 0; i < raw.size(); i += 4) {
    const std::uint32_t w = rd();
    raw[i] = static_cast<std::uint8_t>(w);
    raw[i + 1] = static_cast<std::uint8_t>(w >> 8);
    raw[i + 2] = static_cast<std::uint8_t>(w >> 16);
    raw[i + 3] = static_cast<std::uint8_t>(w >> 24);
  }
  const Digest256 d = Sha256::hash(raw);
  std::array<std::uint8_t, 32> key;
  std::copy(d.begin(), d.end(), key.begin());
  return key;
}

std::array<std::uint8_t, 32> seed_key(std::uint64_t seed) {
  std::array<std::uint8_t, 8> raw;
  for (int i = 0; i < 8; ++i) raw[i] = static_cast<std::uint8_t>(seed >> (8 * i));
  const Digest256 d = Sha256::hash(raw);
  std::array<std::uint8_t, 32> key;
  std::copy(d.begin(), d.end(), key.begin());
  return key;
}

}  // namespace

Drbg::Drbg() : stream_(entropy_key(), kZeroNonce) {}

Drbg::Drbg(std::uint64_t seed) : stream_(seed_key(seed), kZeroNonce) {}

void Drbg::random_bytes(std::span<std::uint8_t> out) { stream_.keystream(out); }

BitVec Drbg::random_bits(std::size_t nbits) {
  std::vector<std::uint8_t> bytes((nbits + 7) / 8);
  random_bytes(bytes);
  return BitVec::from_bytes(bytes, nbits);
}

std::uint64_t Drbg::random_u64() {
  std::uint8_t b[8];
  random_bytes(b);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{b[i]} << (8 * i);
  return v;
}

std::vector<std::uint8_t> Drbg::random_scalar_bytes() {
  std::vector<std::uint8_t> out(32);
  random_bytes(out);
  return out;
}

}  // namespace wavekey::crypto
