#pragma once

// Per-tag key diversification tree (DESIGN.md §14.1): labeled HKDF-SHA256
// derivation master → tenant → tag_uid → purpose, after the NTAG424
// production pattern — every tag's keys are derived, never stored, and a
// compromised tag key reveals nothing about its siblings (each hop is a full
// extract-then-expand under a distinct label, so inverting a child means
// inverting HMAC-SHA256).
//
// The tree hands out three purpose leaves per tag:
//   grant_mac    — MACs offline grant tokens (server/grants.hpp);
//   session_hmac — per-tag session authentication;
//   audit_seal   — seals the genesis link of that scope's audit chain.
//
// Epoch machinery: the whole tree rotates by chaining the master forward —
// master_{e+1} = HKDF(salt = "wavekey-kdf-rotate" ‖ e+1, ikm = master_e) —
// the same forward-only discipline as KeyVault's derive_rotated_key, so a
// compromised current master never reveals an earlier epoch's tree.
// *Per-tag* lineage rotation deliberately lives one layer up
// (server::GrantIssuer chains derive_rotated_key on the tag key), so the
// crypto layer stays stateless.
//
// Thread-safety: rotate_master() is the only mutator; confine it, or wrap
// the tree in the caller's lock (GrantIssuer does). Derivations are const
// and safe concurrently between mutations.

#include <cstdint>
#include <span>

#include "crypto/sha256.hpp"

namespace wavekey::crypto {

/// Purpose leaf of a tag's subtree. Values are wire/label-stable.
enum class KeyPurpose : std::uint8_t {
  kGrantMac = 1,     ///< MACs offline grant tokens
  kSessionHmac = 2,  ///< per-tag session authentication
  kAuditSeal = 3,    ///< seals an audit-chain genesis link
};

/// Stable derivation label (and human-readable name) of a purpose.
const char* key_purpose_label(KeyPurpose purpose);

class KdfTree {
 public:
  /// Builds the tree root from `master` at `master_epoch` (the epoch is part
  /// of the root label, so two epochs never share any derived key).
  explicit KdfTree(std::span<const std::uint8_t> master, std::uint32_t master_epoch = 0);

  std::uint32_t master_epoch() const { return epoch_; }

  /// Advances the whole tree one epoch (see header comment). Every derived
  /// key changes; there is no way back.
  void rotate_master();

  /// Tenant-level intermediate key.
  Digest256 tenant_key(std::uint64_t tenant_id) const;

  /// Epoch-0 tag key: the root of one tag's lineage. Per-tag rotation chains
  /// forward from this via server::derive_rotated_key.
  Digest256 tag_key(std::uint64_t tenant_id, std::uint64_t tag_uid) const;

  /// Purpose leaf under an explicit (possibly lineage-rotated) tag key.
  static Digest256 purpose_key(const Digest256& tag_key, KeyPurpose purpose);

  /// Convenience: epoch-0 purpose leaf straight from the tree.
  Digest256 purpose_key(std::uint64_t tenant_id, std::uint64_t tag_uid,
                        KeyPurpose purpose) const;

 private:
  Digest256 master_{};  ///< chained master at epoch_ (not the caller's input)
  Digest256 root_{};    ///< labeled root: hkdf_labeled(master_, root-label(epoch_))
  std::uint32_t epoch_ = 0;

  void derive_root();
};

}  // namespace wavekey::crypto
