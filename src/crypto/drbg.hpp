#pragma once

// Deterministic random bit generator for the *cryptographic* side of the
// system (OT exponents, pad sequences x_i/y_i, nonces). Backed by ChaCha20
// keyed from std::random_device entropy by default; tests and deterministic
// benches inject an explicit seed.

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/chacha20.hpp"
#include "numeric/bitvec.hpp"

namespace wavekey::crypto {

/// ChaCha20-based CSPRNG.
class Drbg {
 public:
  /// Seeds from std::random_device (mixed through SHA-256).
  Drbg();

  /// Deterministic seeding for tests/benches.
  explicit Drbg(std::uint64_t seed);

  /// Fills a buffer with random bytes.
  void random_bytes(std::span<std::uint8_t> out);

  /// Random bit vector of the given length.
  BitVec random_bits(std::size_t nbits);

  /// Uniform 64-bit value.
  std::uint64_t random_u64();

  /// 32 uniformly random bytes, convenient for scalars/keys.
  std::vector<std::uint8_t> random_scalar_bytes();

 private:
  ChaCha20 stream_;
};

}  // namespace wavekey::crypto
