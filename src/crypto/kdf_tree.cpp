#include "crypto/kdf_tree.hpp"

#include <cstring>
#include <string_view>
#include <vector>

#include "crypto/hkdf.hpp"

namespace wavekey::crypto {

namespace {

using Label = std::vector<std::uint8_t>;

Label make_label(std::string_view prefix, std::uint64_t id) {
  Label label(prefix.begin(), prefix.end());
  for (std::size_t i = 0; i < 8; ++i) label.push_back(static_cast<std::uint8_t>(id >> (8 * i)));
  return label;
}

Label make_label32(std::string_view prefix, std::uint32_t id) {
  Label label(prefix.begin(), prefix.end());
  for (std::size_t i = 0; i < 4; ++i) label.push_back(static_cast<std::uint8_t>(id >> (8 * i)));
  return label;
}

}  // namespace

const char* key_purpose_label(KeyPurpose purpose) {
  switch (purpose) {
    case KeyPurpose::kGrantMac: return "grant_mac";
    case KeyPurpose::kSessionHmac: return "session_hmac";
    case KeyPurpose::kAuditSeal: return "audit_seal";
  }
  return "unknown";
}

KdfTree::KdfTree(std::span<const std::uint8_t> master, std::uint32_t master_epoch)
    : epoch_(master_epoch) {
  // Normalize arbitrary-width master input to one extract so the chained
  // rotation below always operates on a 256-bit value.
  const Label salt = make_label32("wavekey-kdf-master", 0);
  master_ = hkdf_extract(salt, master);
  derive_root();
}

void KdfTree::derive_root() {
  const Label labels[] = {make_label32("wavekey-kdf-root", epoch_)};
  root_ = hkdf_labeled(master_, labels);
}

void KdfTree::rotate_master() {
  // Forward-only chain, mirroring KeyVault's derive_rotated_key discipline:
  // the new master is a one-way function of the old, salted by the new epoch.
  epoch_ += 1;
  const Label salt = make_label32("wavekey-kdf-rotate", epoch_);
  master_ = hkdf_extract(salt, master_);
  derive_root();
}

Digest256 KdfTree::tenant_key(std::uint64_t tenant_id) const {
  const Label labels[] = {make_label("tenant", tenant_id)};
  return hkdf_labeled(root_, labels);
}

Digest256 KdfTree::tag_key(std::uint64_t tenant_id, std::uint64_t tag_uid) const {
  const Label labels[] = {make_label("tenant", tenant_id), make_label("tag", tag_uid)};
  return hkdf_labeled(root_, labels);
}

Digest256 KdfTree::purpose_key(const Digest256& tag_key, KeyPurpose purpose) {
  const std::string_view name = key_purpose_label(purpose);
  Label label(name.begin(), name.end());
  const Label labels[] = {std::move(label)};
  return hkdf_labeled(tag_key, labels);
}

Digest256 KdfTree::purpose_key(std::uint64_t tenant_id, std::uint64_t tag_uid,
                               KeyPurpose purpose) const {
  return purpose_key(tag_key(tenant_id, tag_uid), purpose);
}

}  // namespace wavekey::crypto
