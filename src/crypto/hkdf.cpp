#include "crypto/hkdf.hpp"

#include <algorithm>
#include <stdexcept>

#include "crypto/hmac.hpp"

namespace wavekey::crypto {

Digest256 hkdf_extract(std::span<const std::uint8_t> salt, std::span<const std::uint8_t> ikm) {
  if (salt.empty()) {
    const std::uint8_t zero_salt[32] = {0};
    return hmac_sha256(zero_salt, ikm);
  }
  return hmac_sha256(salt, ikm);
}

std::vector<std::uint8_t> hkdf_expand(const Digest256& prk, std::span<const std::uint8_t> info,
                                      std::size_t length) {
  constexpr std::size_t kHashLen = 32;
  if (length > 255 * kHashLen) throw std::invalid_argument("hkdf_expand: length > 255*HashLen");
  std::vector<std::uint8_t> okm;
  okm.reserve(length);
  std::vector<std::uint8_t> block;  // T(i-1) || info || i
  Digest256 t{};
  std::uint8_t counter = 1;
  while (okm.size() < length) {
    block.clear();
    if (counter > 1) block.insert(block.end(), t.begin(), t.end());
    block.insert(block.end(), info.begin(), info.end());
    block.push_back(counter);
    t = hmac_sha256(prk, block);
    const std::size_t take = std::min(kHashLen, length - okm.size());
    okm.insert(okm.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
    ++counter;
  }
  return okm;
}

std::vector<std::uint8_t> hkdf_sha256(std::span<const std::uint8_t> salt,
                                      std::span<const std::uint8_t> ikm,
                                      std::span<const std::uint8_t> info, std::size_t length) {
  return hkdf_expand(hkdf_extract(salt, ikm), info, length);
}

Digest256 hkdf_labeled(std::span<const std::uint8_t> master,
                       std::span<const std::vector<std::uint8_t>> labels) {
  std::vector<std::uint8_t> key(master.begin(), master.end());
  Digest256 out{};
  std::copy(key.begin(), key.begin() + std::min<std::size_t>(key.size(), out.size()), out.begin());
  for (const std::vector<std::uint8_t>& label : labels) {
    const std::vector<std::uint8_t> derived = hkdf_sha256(label, key, {}, out.size());
    std::copy(derived.begin(), derived.end(), out.begin());
    key.assign(derived.begin(), derived.end());
  }
  return out;
}

}  // namespace wavekey::crypto
