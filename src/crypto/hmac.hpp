#pragma once

// HMAC-SHA256 (RFC 2104). The key-agreement protocol's final confirmation
// step is "HMAC of the nonce N using the established key as the password"
// (SIV-D2 / Fig. 4).

#include <span>
#include <vector>

#include "crypto/sha256.hpp"

namespace wavekey::crypto {

/// HMAC-SHA256 of `data` under `key`. Keys longer than the block size are
/// pre-hashed per the RFC.
Digest256 hmac_sha256(std::span<const std::uint8_t> key, std::span<const std::uint8_t> data);

/// Same MAC, pinned to the portable SHA-256 kernel (no SHA-NI) — the
/// in-process reference for kernel differentials (crypto_test) and the
/// pre-accelerated arm of bench_vault's baseline. Produces bit-identical
/// output to hmac_sha256.
Digest256 hmac_sha256_portable(std::span<const std::uint8_t> key,
                               std::span<const std::uint8_t> data);

/// Constant-time digest comparison (avoids leaking the mismatch position to
/// a timing observer during key confirmation).
bool digest_equal(const Digest256& a, const Digest256& b);

}  // namespace wavekey::crypto
