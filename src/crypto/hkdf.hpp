#pragma once

// HKDF-SHA256 (RFC 5869) — extract-then-expand key derivation on top of
// crypto/hmac.hpp. The access-control server (src/server) rotates vault
// keys by re-deriving epoch k+1 from epoch k, so a compromised current key
// never reveals earlier traffic and rotation preserves full key entropy
// (tested against the NIST battery in tests/server_test.cpp).
//
// Thread-safety: pure functions, no shared state.

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/sha256.hpp"

namespace wavekey::crypto {

/// HKDF-Extract: PRK = HMAC-SHA256(salt, IKM). An empty salt means the
/// RFC's default all-zero salt of hash length.
Digest256 hkdf_extract(std::span<const std::uint8_t> salt, std::span<const std::uint8_t> ikm);

/// HKDF-Expand: OKM of `length` bytes from PRK and context `info`.
/// Throws std::invalid_argument if length > 255 * 32 (RFC 5869 bound).
std::vector<std::uint8_t> hkdf_expand(const Digest256& prk, std::span<const std::uint8_t> info,
                                      std::size_t length);

/// One-shot extract+expand.
std::vector<std::uint8_t> hkdf_sha256(std::span<const std::uint8_t> salt,
                                      std::span<const std::uint8_t> ikm,
                                      std::span<const std::uint8_t> info, std::size_t length);

/// Chained labeled derivation — the node walk of crypto::KdfTree. Starting
/// from `master`, each label in turn derives
///   key_{i+1} = HKDF-SHA256(salt = labels[i], ikm = key_i, info = "", 32),
/// so every tree node is a full extract-then-expand away from its parent and
/// siblings under distinct labels are cryptographically independent.
Digest256 hkdf_labeled(std::span<const std::uint8_t> master,
                       std::span<const std::vector<std::uint8_t>> labels);

}  // namespace wavekey::crypto
