// AVX2 4-block-parallel ChaCha20 kernel (DESIGN.md §8.5). Each 256-bit row
// vector holds the same row of TWO blocks (one per 128-bit lane); the
// kernel runs two such block pairs per iteration, so a full iteration
// produces 4 blocks = 256 keystream bytes. _mm256_shuffle_epi32 rotates
// within each lane independently, which is exactly the per-block diagonal
// step, and the byte-granular 16/8-bit rotations use VPSHUFB.
//
// Compiled with -mavx2 on x86 (src/crypto/CMakeLists.txt); elsewhere the
// symbol delegates to the SSE2/scalar kernel so callers can link
// unconditionally and gate on runtime::cpu.

#include "crypto/chacha20.hpp"

#if defined(__AVX2__)
#include <immintrin.h>

#include <algorithm>
#include <cstring>
#endif

namespace wavekey::crypto {

#if defined(__AVX2__)

namespace {

inline __m256i rotl_epi32(__m256i v, int r) {
  return _mm256_or_si256(_mm256_slli_epi32(v, r), _mm256_srli_epi32(v, 32 - r));
}

inline __m256i rot16(__m256i v) {
  const __m256i k = _mm256_set_epi8(13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2,
                                    13, 12, 15, 14, 9, 8, 11, 10, 5, 4, 7, 6, 1, 0, 3, 2);
  return _mm256_shuffle_epi8(v, k);
}

inline __m256i rot8(__m256i v) {
  const __m256i k = _mm256_set_epi8(14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3,
                                    14, 13, 12, 15, 10, 9, 8, 11, 6, 5, 4, 7, 2, 1, 0, 3);
  return _mm256_shuffle_epi8(v, k);
}

inline void double_round_rows(__m256i& a, __m256i& b, __m256i& c, __m256i& d) {
  a = _mm256_add_epi32(a, b);
  d = rot16(_mm256_xor_si256(d, a));
  c = _mm256_add_epi32(c, d);
  b = rotl_epi32(_mm256_xor_si256(b, c), 12);
  a = _mm256_add_epi32(a, b);
  d = rot8(_mm256_xor_si256(d, a));
  c = _mm256_add_epi32(c, d);
  b = rotl_epi32(_mm256_xor_si256(b, c), 7);

  b = _mm256_shuffle_epi32(b, 0x39);
  c = _mm256_shuffle_epi32(c, 0x4E);
  d = _mm256_shuffle_epi32(d, 0x93);

  a = _mm256_add_epi32(a, b);
  d = rot16(_mm256_xor_si256(d, a));
  c = _mm256_add_epi32(c, d);
  b = rotl_epi32(_mm256_xor_si256(b, c), 12);
  a = _mm256_add_epi32(a, b);
  d = rot8(_mm256_xor_si256(d, a));
  c = _mm256_add_epi32(c, d);
  b = rotl_epi32(_mm256_xor_si256(b, c), 7);

  b = _mm256_shuffle_epi32(b, 0x93);
  c = _mm256_shuffle_epi32(c, 0x4E);
  d = _mm256_shuffle_epi32(d, 0x39);
}

struct PairState {
  __m256i a, b, c;  // rows 0..2, identical for every block
  __m256i d_base;   // row 3 with counter offset 0 in both lanes
};

inline PairState load_state(const std::uint32_t state[16]) {
  PairState s;
  s.a = _mm256_broadcastsi128_si256(_mm_loadu_si128(reinterpret_cast<const __m128i*>(state)));
  s.b = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4)));
  s.c = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 8)));
  s.d_base = _mm256_broadcastsi128_si256(
      _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 12)));
  return s;
}

// Row-3 vector for the block pair (base + 0, base + 1): lane 0 gets counter
// offset `base`, lane 1 gets `base + 1` (32-bit add, wraps like the scalar
// counter).
inline __m256i pair_d(const PairState& s, std::uint32_t base) {
  const __m256i off = _mm256_set_epi32(0, 0, 0, static_cast<int>(base + 1),  //
                                       0, 0, 0, static_cast<int>(base));
  return _mm256_add_epi32(s.d_base, off);
}

// Runs the 20 rounds for one block pair and writes 128 keystream bytes.
inline void run_pair(const PairState& s, __m256i d_init, std::uint8_t* out) {
  __m256i a = s.a, b = s.b, c = s.c, d = d_init;
  for (int round = 0; round < 10; ++round) double_round_rows(a, b, c, d);
  const __m256i fa = _mm256_add_epi32(a, s.a);
  const __m256i fb = _mm256_add_epi32(b, s.b);
  const __m256i fc = _mm256_add_epi32(c, s.c);
  const __m256i fd = _mm256_add_epi32(d, d_init);
  // Lane 0 of (fa..fd) is block base, lane 1 is block base+1.
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 0),
                      _mm256_permute2x128_si256(fa, fb, 0x20));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 32),
                      _mm256_permute2x128_si256(fc, fd, 0x20));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 64),
                      _mm256_permute2x128_si256(fa, fb, 0x31));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 96),
                      _mm256_permute2x128_si256(fc, fd, 0x31));
}

// Two interleaved block pairs (4 blocks, 256 bytes) — doubles the
// independent dependency chains so the FMA-free integer pipes stay busy.
inline void run_quad(const PairState& s, std::uint32_t base, std::uint8_t* out) {
  const __m256i d0_init = pair_d(s, base);
  const __m256i d1_init = pair_d(s, base + 2);
  __m256i a0 = s.a, b0 = s.b, c0 = s.c, d0 = d0_init;
  __m256i a1 = s.a, b1 = s.b, c1 = s.c, d1 = d1_init;
  for (int round = 0; round < 10; ++round) {
    double_round_rows(a0, b0, c0, d0);
    double_round_rows(a1, b1, c1, d1);
  }
  const __m256i fa0 = _mm256_add_epi32(a0, s.a), fb0 = _mm256_add_epi32(b0, s.b);
  const __m256i fc0 = _mm256_add_epi32(c0, s.c), fd0 = _mm256_add_epi32(d0, d0_init);
  const __m256i fa1 = _mm256_add_epi32(a1, s.a), fb1 = _mm256_add_epi32(b1, s.b);
  const __m256i fc1 = _mm256_add_epi32(c1, s.c), fd1 = _mm256_add_epi32(d1, d1_init);
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 0),
                      _mm256_permute2x128_si256(fa0, fb0, 0x20));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 32),
                      _mm256_permute2x128_si256(fc0, fd0, 0x20));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 64),
                      _mm256_permute2x128_si256(fa0, fb0, 0x31));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 96),
                      _mm256_permute2x128_si256(fc0, fd0, 0x31));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 128),
                      _mm256_permute2x128_si256(fa1, fb1, 0x20));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 160),
                      _mm256_permute2x128_si256(fc1, fd1, 0x20));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 192),
                      _mm256_permute2x128_si256(fa1, fb1, 0x31));
  _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + 224),
                      _mm256_permute2x128_si256(fc1, fd1, 0x31));
}

}  // namespace

void chacha20_blocks_avx2(const std::uint32_t state[16], std::uint8_t* out,
                          std::size_t nblocks) {
  const PairState s = load_state(state);
  std::uint32_t base = 0;
  std::size_t remaining = nblocks;
  for (; remaining >= 4; remaining -= 4, base += 4) {
    run_quad(s, base, out);
    out += 256;
  }
  // Tail: run pairs into a staging buffer and copy only the wanted bytes
  // (the extra block's state is computed with a wrapping counter and
  // discarded — the caller advances the real counter by `nblocks` only).
  while (remaining > 0) {
    alignas(32) std::uint8_t staging[128];
    run_pair(s, pair_d(s, base), staging);
    const std::size_t take = std::min<std::size_t>(remaining, 2);
    std::memcpy(out, staging, take * 64);
    out += take * 64;
    base += 2;
    remaining -= take;
  }
}

#else  // !defined(__AVX2__)

void chacha20_blocks_avx2(const std::uint32_t state[16], std::uint8_t* out,
                          std::size_t nblocks) {
  chacha20_blocks_sse2(state, out, nblocks);
}

#endif

}  // namespace wavekey::crypto
