#include "crypto/stream_cipher.hpp"

#include "crypto/sha256.hpp"

namespace wavekey::crypto {

std::vector<std::uint8_t> stream_crypt(std::span<const std::uint8_t> key,
                                       std::span<const std::uint8_t> message) {
  std::vector<std::uint8_t> out(message.begin(), message.end());
  std::uint32_t counter = 0;
  std::size_t pos = 0;
  while (pos < out.size()) {
    Sha256 h;
    h.update(key);
    const std::uint8_t ctr_be[4] = {
        static_cast<std::uint8_t>(counter >> 24), static_cast<std::uint8_t>(counter >> 16),
        static_cast<std::uint8_t>(counter >> 8), static_cast<std::uint8_t>(counter)};
    h.update(ctr_be);
    const Digest256 block = h.finalize();
    for (std::size_t i = 0; i < block.size() && pos < out.size(); ++i, ++pos)
      out[pos] ^= block[i];
    ++counter;
  }
  return out;
}

}  // namespace wavekey::crypto
