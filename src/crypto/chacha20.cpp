#include "crypto/chacha20.hpp"

#include <bit>
#include <cstring>
#include <stdexcept>

#include "runtime/cpu.hpp"

#if defined(__SSE2__) || defined(_M_X64)
#define WAVEKEY_CHACHA_SSE2 1
#include <emmintrin.h>
#endif

namespace wavekey::crypto {
namespace {

constexpr std::uint32_t load32_le(const std::uint8_t* p) {
  return std::uint32_t{p[0]} | (std::uint32_t{p[1]} << 8) | (std::uint32_t{p[2]} << 16) |
         (std::uint32_t{p[3]} << 24);
}

void quarter_round(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c, std::uint32_t& d) {
  a += b;
  d = std::rotl(d ^ a, 16);
  c += d;
  b = std::rotl(b ^ c, 12);
  a += b;
  d = std::rotl(d ^ a, 8);
  c += d;
  b = std::rotl(b ^ c, 7);
}

}  // namespace

void chacha20_blocks_scalar(const std::uint32_t state[16], std::uint8_t* out,
                            std::size_t nblocks) {
  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    std::array<std::uint32_t, 16> x;
    std::memcpy(x.data(), state, 64);
    x[12] = state[12] + static_cast<std::uint32_t>(blk);
    const std::array<std::uint32_t, 16> input = x;
    for (int round = 0; round < 10; ++round) {
      quarter_round(x[0], x[4], x[8], x[12]);
      quarter_round(x[1], x[5], x[9], x[13]);
      quarter_round(x[2], x[6], x[10], x[14]);
      quarter_round(x[3], x[7], x[11], x[15]);
      quarter_round(x[0], x[5], x[10], x[15]);
      quarter_round(x[1], x[6], x[11], x[12]);
      quarter_round(x[2], x[7], x[8], x[13]);
      quarter_round(x[3], x[4], x[9], x[14]);
    }
    std::uint8_t* o = out + blk * 64;
    for (int i = 0; i < 16; ++i) {
      const std::uint32_t v = x[i] + input[i];
      o[i * 4 + 0] = static_cast<std::uint8_t>(v);
      o[i * 4 + 1] = static_cast<std::uint8_t>(v >> 8);
      o[i * 4 + 2] = static_cast<std::uint8_t>(v >> 16);
      o[i * 4 + 3] = static_cast<std::uint8_t>(v >> 24);
    }
  }
}

#if defined(WAVEKEY_CHACHA_SSE2)

namespace {

inline __m128i rotl_epi32(__m128i v, int r) {
  return _mm_or_si128(_mm_slli_epi32(v, r), _mm_srli_epi32(v, 32 - r));
}

// One double round on the four row vectors (a = row 0 .. d = row 3). The
// diagonal half rotates rows b/c/d into column position and back with
// pshufd — the standard row-sliced ChaCha layout.
inline void double_round_rows(__m128i& a, __m128i& b, __m128i& c, __m128i& d) {
  a = _mm_add_epi32(a, b);
  d = rotl_epi32(_mm_xor_si128(d, a), 16);
  c = _mm_add_epi32(c, d);
  b = rotl_epi32(_mm_xor_si128(b, c), 12);
  a = _mm_add_epi32(a, b);
  d = rotl_epi32(_mm_xor_si128(d, a), 8);
  c = _mm_add_epi32(c, d);
  b = rotl_epi32(_mm_xor_si128(b, c), 7);

  b = _mm_shuffle_epi32(b, 0x39);  // rotate left one lane
  c = _mm_shuffle_epi32(c, 0x4E);  // rotate two lanes
  d = _mm_shuffle_epi32(d, 0x93);  // rotate three lanes

  a = _mm_add_epi32(a, b);
  d = rotl_epi32(_mm_xor_si128(d, a), 16);
  c = _mm_add_epi32(c, d);
  b = rotl_epi32(_mm_xor_si128(b, c), 12);
  a = _mm_add_epi32(a, b);
  d = rotl_epi32(_mm_xor_si128(d, a), 8);
  c = _mm_add_epi32(c, d);
  b = rotl_epi32(_mm_xor_si128(b, c), 7);

  b = _mm_shuffle_epi32(b, 0x93);
  c = _mm_shuffle_epi32(c, 0x4E);
  d = _mm_shuffle_epi32(d, 0x39);
}

}  // namespace

void chacha20_blocks_sse2(const std::uint32_t state[16], std::uint8_t* out,
                          std::size_t nblocks) {
  const __m128i s0 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 0));
  const __m128i s1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));
  const __m128i s2 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 8));
  const __m128i s3_base = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 12));
  for (std::size_t blk = 0; blk < nblocks; ++blk) {
    const __m128i s3 =
        _mm_add_epi32(s3_base, _mm_set_epi32(0, 0, 0, static_cast<int>(blk)));
    __m128i a = s0, b = s1, c = s2, d = s3;
    for (int round = 0; round < 10; ++round) double_round_rows(a, b, c, d);
    std::uint8_t* o = out + blk * 64;
    _mm_storeu_si128(reinterpret_cast<__m128i*>(o + 0), _mm_add_epi32(a, s0));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(o + 16), _mm_add_epi32(b, s1));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(o + 32), _mm_add_epi32(c, s2));
    _mm_storeu_si128(reinterpret_cast<__m128i*>(o + 48), _mm_add_epi32(d, s3));
  }
}

#else

void chacha20_blocks_sse2(const std::uint32_t state[16], std::uint8_t* out,
                          std::size_t nblocks) {
  chacha20_blocks_scalar(state, out, nblocks);
}

#endif  // WAVEKEY_CHACHA_SSE2

ChaCha20::ChaCha20(std::span<const std::uint8_t> key, std::span<const std::uint8_t> nonce,
                   std::uint32_t counter) {
  if (key.size() != 32) throw std::invalid_argument("ChaCha20: key must be 32 bytes");
  if (nonce.size() != 12) throw std::invalid_argument("ChaCha20: nonce must be 12 bytes");
  state_[0] = 0x61707865;
  state_[1] = 0x3320646e;
  state_[2] = 0x79622d32;
  state_[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state_[4 + i] = load32_le(key.data() + 4 * i);
  state_[12] = counter;
  for (int i = 0; i < 3; ++i) state_[13 + i] = load32_le(nonce.data() + 4 * i);
}

void ChaCha20::generate_blocks(std::uint8_t* out, std::size_t nblocks) {
  using runtime::cpu::SimdTier;
  const SimdTier tier = runtime::cpu::active_tier();
  if (tier >= SimdTier::kAvx2) {
    chacha20_blocks_avx2(state_.data(), out, nblocks);
  } else if (tier >= SimdTier::kSse2) {
    chacha20_blocks_sse2(state_.data(), out, nblocks);
  } else {
    chacha20_blocks_scalar(state_.data(), out, nblocks);
  }
  state_[12] += static_cast<std::uint32_t>(nblocks);
}

void ChaCha20::refill() {
  generate_blocks(block_.data(), 1);
  block_pos_ = 0;
}

void ChaCha20::keystream(std::span<std::uint8_t> out) {
  std::size_t pos = 0;
  // Drain any buffered partial block first.
  while (block_pos_ < 64 && pos < out.size()) out[pos++] = block_[block_pos_++];
  // Whole blocks go straight to the destination through the bulk kernel.
  const std::size_t nblocks = (out.size() - pos) / 64;
  if (nblocks > 0) {
    generate_blocks(out.data() + pos, nblocks);
    pos += nblocks * 64;
  }
  // Final partial block through the buffer, keeping the unused tail.
  if (pos < out.size()) {
    refill();
    while (pos < out.size()) out[pos++] = block_[block_pos_++];
  }
}

void ChaCha20::crypt(std::span<std::uint8_t> data) {
  std::size_t pos = 0;
  while (block_pos_ < 64 && pos < data.size()) data[pos++] ^= block_[block_pos_++];
  // Bulk-XOR whole blocks via a small keystream staging buffer.
  std::uint8_t ks[256];
  while (data.size() - pos >= 64) {
    const std::size_t nblocks = std::min<std::size_t>((data.size() - pos) / 64, 4);
    generate_blocks(ks, nblocks);
    const std::size_t nbytes = nblocks * 64;
    for (std::size_t i = 0; i < nbytes; ++i) data[pos + i] ^= ks[i];
    pos += nbytes;
  }
  if (pos < data.size()) {
    refill();
    while (pos < data.size()) data[pos++] ^= block_[block_pos_++];
  }
}

}  // namespace wavekey::crypto
