#pragma once

// 1-out-of-2 Oblivious Transfer, following the computationally efficient
// protocol of Chou & Orlandi that the paper adopts (SIV-D1, Fig. 3):
//
//   sender:    a <- Z_u,  M_a = g^a
//   receiver:  b <- Z_u,  M_b = g^b            (to get secret 0)
//                          M_b = M_a * g^b      (to get secret 1)
//   sender:    k_0 = H(M_b^a), k_1 = H((M_b / M_a)^a)
//              e_i = E(secret_i, k_i)
//   receiver:  k   = H(M_a^b)  decrypts exactly the chosen e.
//
// The group is Z_p^* with p = 2^255 - 19 (see field25519.hpp). The classes
// below expose the three protocol messages explicitly so the key-agreement
// layer can batch many instances into single network messages.

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "crypto/drbg.hpp"
#include "crypto/field25519.hpp"

namespace wavekey::crypto {

using Bytes = std::vector<std::uint8_t>;

/// Sender side of one OT instance.
class OtSender {
 public:
  /// Draws the ephemeral exponent `a` from the DRBG and precomputes M_a
  /// together with k1_factor_ = g^(-a^2 mod (p-1)) (see encrypt()).
  explicit OtSender(Drbg& rng);

  /// The first protocol message M_a.
  const Fe25519& first_message() const { return ma_; }

  /// Given the receiver's M_b, encrypts the two secrets. Element i of the
  /// result can only be decrypted by a receiver that chose i.
  /// Throws std::invalid_argument if M_b is zero (malformed/forged message).
  std::pair<Bytes, Bytes> encrypt(const Fe25519& mb, std::span<const std::uint8_t> secret0,
                                  std::span<const std::uint8_t> secret1) const;

 private:
  std::array<std::uint8_t, 32> a_;
  Fe25519 ma_;
  // g^(-a^2 mod (p-1)), fixed per instance. encrypt() uses the identity
  //   (M_b / M_a)^a = M_b^a * (g^a)^-a = M_b^a * g^(-a^2),
  // so k_1's group element is one field multiply on top of k_0's — no
  // inverse and no second exponentiation per call. (This supersedes merely
  // caching M_a^-1, which would still cost a full M_b-dependent
  // exponentiation per encrypt.)
  Fe25519 k1_factor_;
};

/// Receiver side of one OT instance.
class OtReceiver {
 public:
  /// @param choice  which of the sender's two secrets to obtain
  /// @param ma      the sender's first message
  /// Throws std::invalid_argument if M_a is zero.
  OtReceiver(Drbg& rng, bool choice, const Fe25519& ma);

  /// The response message M_b.
  const Fe25519& response() const { return mb_; }

  /// Decrypts the chosen ciphertext from the sender's pair.
  Bytes decrypt(const std::pair<Bytes, Bytes>& ciphertexts) const;

 private:
  bool choice_;
  std::array<std::uint8_t, 32> b_;
  Fe25519 ma_;
  Fe25519 mb_;
};

/// Derives the symmetric key for a group element: SHA256(canonical bytes).
Bytes ot_derive_key(const Fe25519& element);

}  // namespace wavekey::crypto
