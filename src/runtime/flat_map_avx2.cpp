// AVX2 control-byte scan for runtime::FlatMap: one 32-byte window covers
// two consecutive 16-slot groups per probe step, halving probe iterations
// on long chains. Matches are reported lowest-bit-first, which is exactly
// the scalar/SSE2 group-by-group visit order — required for tier-identical
// map state (see flat_map.hpp).
//
// Isolated in its own translation unit compiled with -mavx2 (see
// src/runtime/CMakeLists.txt); the rest of the library stays at baseline
// ISA and reaches these kernels only through the runtime::cpu tier check.

#include "runtime/flat_map.hpp"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace wavekey::runtime::flat_map_detail {

#if defined(__AVX2__)

namespace {

std::uint32_t avx2_match_tag(const std::uint8_t* w, std::uint8_t tag) {
  const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  const __m256i t = _mm256_set1_epi8(static_cast<char>(tag));
  return static_cast<std::uint32_t>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(v, t)));
}

std::uint32_t avx2_match_empty(const std::uint8_t* w) {
  const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  const __m256i t = _mm256_set1_epi8(static_cast<char>(kCtrlEmpty));
  return static_cast<std::uint32_t>(_mm256_movemask_epi8(_mm256_cmpeq_epi8(v, t)));
}

std::uint32_t avx2_match_available(const std::uint8_t* w) {
  const __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(w));
  // byte < -1 ⇔ empty (-128) or deleted (-2); full tags are >= 0.
  return static_cast<std::uint32_t>(
      _mm256_movemask_epi8(_mm256_cmpgt_epi8(_mm256_set1_epi8(-1), v)));
}

constexpr ScanOps kAvx2Ops{avx2_match_tag, avx2_match_empty, avx2_match_available, 32};

}  // namespace

const ScanOps* avx2_scan_ops() { return &kAvx2Ops; }

#else

const ScanOps* avx2_scan_ops() { return nullptr; }

#endif

}  // namespace wavekey::runtime::flat_map_detail
