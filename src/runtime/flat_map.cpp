// Control-byte scan kernels behind runtime::FlatMap (see flat_map.hpp).
//
// Three tiers share one contract: scan a window of control bytes and return
// a little-endian bitmask of matching positions. Scalar and SSE2 consume
// 16-byte windows (one group); AVX2 (flat_map_avx2.cpp) consumes 32 bytes
// (two consecutive groups). Because probing is linear over groups and every
// kernel reports matches lowest-bit-first, all tiers visit slots in the
// same order and the map's state is bit-identical across tiers.

#include "runtime/flat_map.hpp"

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace wavekey::runtime::flat_map_detail {
namespace {

// ---- scalar (portable) ------------------------------------------------

std::uint32_t scalar_match_tag(const std::uint8_t* w, std::uint8_t tag) {
  std::uint32_t m = 0;
  for (std::uint32_t i = 0; i < 16; ++i) {
    m |= static_cast<std::uint32_t>(w[i] == tag) << i;
  }
  return m;
}

std::uint32_t scalar_match_empty(const std::uint8_t* w) {
  return scalar_match_tag(w, kCtrlEmpty);
}

std::uint32_t scalar_match_available(const std::uint8_t* w) {
  // Empty (0x80 = -128) and deleted (0xFE = -2) are the only bytes whose
  // signed value is < -1; full slots carry a 7-bit tag (>= 0).
  std::uint32_t m = 0;
  for (std::uint32_t i = 0; i < 16; ++i) {
    m |= static_cast<std::uint32_t>(static_cast<std::int8_t>(w[i]) < -1) << i;
  }
  return m;
}

constexpr ScanOps kScalarOps{scalar_match_tag, scalar_match_empty, scalar_match_available,
                             16};

// ---- sse2 -------------------------------------------------------------

#if defined(__SSE2__)

std::uint32_t sse2_match_tag(const std::uint8_t* w, std::uint8_t tag) {
  const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(w));
  const __m128i t = _mm_set1_epi8(static_cast<char>(tag));
  return static_cast<std::uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(v, t)));
}

std::uint32_t sse2_match_empty(const std::uint8_t* w) {
  const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(w));
  const __m128i t = _mm_set1_epi8(static_cast<char>(kCtrlEmpty));
  return static_cast<std::uint32_t>(_mm_movemask_epi8(_mm_cmpeq_epi8(v, t)));
}

std::uint32_t sse2_match_available(const std::uint8_t* w) {
  const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(w));
  // -1 > byte  ⇔  byte < -1  ⇔  byte is kCtrlEmpty (-128) or kCtrlDeleted (-2).
  return static_cast<std::uint32_t>(
      _mm_movemask_epi8(_mm_cmpgt_epi8(_mm_set1_epi8(-1), v)));
}

constexpr ScanOps kSse2Ops{sse2_match_tag, sse2_match_empty, sse2_match_available, 16};

#endif  // __SSE2__

}  // namespace

const ScanOps& scan_ops_for(cpu::SimdTier tier) {
#if defined(__SSE2__)
  if (tier >= cpu::SimdTier::kAvx2) {
    if (const ScanOps* avx2 = avx2_scan_ops(); avx2 != nullptr) return *avx2;
  }
  if (tier >= cpu::SimdTier::kSse2) return kSse2Ops;
#else
  (void)tier;
#endif
  return kScalarOps;
}

const ScanOps& scan_ops() { return scan_ops_for(cpu::active_tier()); }

}  // namespace wavekey::runtime::flat_map_detail
