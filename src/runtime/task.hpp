#pragma once

// Lazy C++20 coroutine task — the unit of work the event-loop executor
// (runtime/event_loop.hpp) schedules. A Task<T> does not run until awaited:
// `co_await task` starts the child coroutine with symmetric transfer and
// resumes the parent when the child reaches its final suspend point, so a
// chain of N awaits costs N frame allocations and zero threads, mutexes, or
// heap queues. Exceptions propagate through co_await exactly like a normal
// call: a child that throws re-throws in the awaiting parent.
//
// Ownership: the Task object owns the coroutine frame and destroys it on
// destruction (frames are always suspended when destroyed — at the initial
// suspend point if never awaited, at the final one if completed). Tasks are
// move-only; awaiting is a consuming operation (`co_await std::move(t)` or
// awaiting a prvalue).
//
// Thread-safety: a Task is a value object confined to one coroutine chain;
// resuming the same handle from two threads is a race by construction. Cross-
// thread scheduling is the event loop's job, not the task's.

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

namespace wavekey::runtime {

template <typename T>
class Task;

namespace detail {

/// Final awaiter: symmetric transfer back to whoever co_awaited this task
/// (or a no-op if the task was started without a continuation).
struct TaskFinalAwaiter {
  bool await_ready() const noexcept { return false; }
  template <typename Promise>
  std::coroutine_handle<> await_suspend(std::coroutine_handle<Promise> h) noexcept {
    std::coroutine_handle<> continuation = h.promise().continuation;
    return continuation ? continuation : std::noop_coroutine();
  }
  void await_resume() const noexcept {}
};

struct TaskPromiseBase {
  std::coroutine_handle<> continuation;  ///< resumed at final_suspend
  std::suspend_always initial_suspend() noexcept { return {}; }  // lazy start
  TaskFinalAwaiter final_suspend() noexcept { return {}; }
};

template <typename T>
struct TaskPromise : TaskPromiseBase {
  std::optional<T> value;
  std::exception_ptr error;

  Task<T> get_return_object();
  void return_value(T v) { value.emplace(std::move(v)); }
  void unhandled_exception() { error = std::current_exception(); }
  T result() {
    if (error) std::rethrow_exception(error);
    return std::move(*value);
  }
};

template <>
struct TaskPromise<void> : TaskPromiseBase {
  std::exception_ptr error;

  Task<void> get_return_object();
  void return_void() {}
  void unhandled_exception() { error = std::current_exception(); }
  void result() {
    if (error) std::rethrow_exception(error);
  }
};

}  // namespace detail

template <typename T>
class [[nodiscard]] Task {
 public:
  using promise_type = detail::TaskPromise<T>;

  Task() noexcept = default;
  explicit Task(std::coroutine_handle<promise_type> handle) noexcept : handle_(handle) {}
  Task(Task&& other) noexcept : handle_(std::exchange(other.handle_, {})) {}
  Task& operator=(Task&& other) noexcept {
    if (this != &other) {
      destroy();
      handle_ = std::exchange(other.handle_, {});
    }
    return *this;
  }
  Task(const Task&) = delete;
  Task& operator=(const Task&) = delete;
  ~Task() { destroy(); }

  bool valid() const noexcept { return static_cast<bool>(handle_); }

  /// Consuming await: starts the child via symmetric transfer; the awaiting
  /// coroutine resumes (on the same thread the child finished on) once the
  /// child completes, receiving its value or rethrown exception.
  auto operator co_await() && noexcept {
    struct Awaiter {
      std::coroutine_handle<promise_type> handle;
      bool await_ready() const noexcept { return !handle || handle.done(); }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiting) noexcept {
        handle.promise().continuation = awaiting;
        return handle;
      }
      T await_resume() { return handle.promise().result(); }
    };
    return Awaiter{handle_};
  }

  /// The raw handle (event-loop internals only; does not release ownership).
  std::coroutine_handle<promise_type> handle() const noexcept { return handle_; }

 private:
  void destroy() {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }

  std::coroutine_handle<promise_type> handle_;
};

namespace detail {

template <typename T>
Task<T> TaskPromise<T>::get_return_object() {
  return Task<T>(std::coroutine_handle<TaskPromise<T>>::from_promise(*this));
}

inline Task<void> TaskPromise<void>::get_return_object() {
  return Task<void>(std::coroutine_handle<TaskPromise<void>>::from_promise(*this));
}

}  // namespace detail

}  // namespace wavekey::runtime
