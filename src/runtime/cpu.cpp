#include "runtime/cpu.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace wavekey::runtime::cpu {
namespace {

// Cached tiers. kUnset marks "not yet resolved"; resolution is idempotent,
// so a benign race between first callers resolves to the same value.
constexpr int kUnset = -1;
std::atomic<int> g_detected{kUnset};
std::atomic<int> g_active{kUnset};

SimdTier probe_hardware() {
#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64) || defined(_M_IX86)
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) return SimdTier::kAvx2;
  if (__builtin_cpu_supports("sse2")) return SimdTier::kSse2;
  return SimdTier::kScalar;
#else
  // Non-x86: only the portable kernels are compiled for dispatch.
  return SimdTier::kScalar;
#endif
}

void log_decision(SimdTier active, SimdTier detected, const char* env) {
  static std::once_flag flag;
  std::call_once(flag, [&] {
    if (env != nullptr) {
      std::fprintf(stderr, "wavekey: SIMD tier %s (detected %s, WAVEKEY_SIMD=%s)\n",
                   tier_name(active), tier_name(detected), env);
    } else {
      std::fprintf(stderr, "wavekey: SIMD tier %s\n", tier_name(active));
    }
  });
}

}  // namespace

const char* tier_name(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar: return "scalar";
    case SimdTier::kSse2: return "sse2";
    case SimdTier::kAvx2: return "avx2";
  }
  return "unknown";
}

SimdTier detected_tier() {
  int cached = g_detected.load(std::memory_order_relaxed);
  if (cached == kUnset) {
    cached = static_cast<int>(probe_hardware());
    g_detected.store(cached, std::memory_order_relaxed);
  }
  return static_cast<SimdTier>(cached);
}

SimdTier resolve_tier(const char* env, SimdTier detected) {
  if (env == nullptr || *env == '\0') return detected;
  SimdTier requested;
  if (std::strcmp(env, "scalar") == 0) {
    requested = SimdTier::kScalar;
  } else if (std::strcmp(env, "sse2") == 0) {
    requested = SimdTier::kSse2;
  } else if (std::strcmp(env, "avx2") == 0) {
    requested = SimdTier::kAvx2;
  } else {
    std::fprintf(stderr, "wavekey: ignoring unknown WAVEKEY_SIMD value '%s'\n", env);
    return detected;
  }
  // Never raise above what the hardware can execute.
  return requested < detected ? requested : detected;
}

SimdTier active_tier() {
  int cached = g_active.load(std::memory_order_relaxed);
  if (cached == kUnset) {
    const SimdTier detected = detected_tier();
    const char* env = std::getenv("WAVEKEY_SIMD");
    const SimdTier active = resolve_tier(env, detected);
    log_decision(active, detected, env);
    cached = static_cast<int>(active);
    g_active.store(cached, std::memory_order_relaxed);
  }
  return static_cast<SimdTier>(cached);
}

bool detected_sha_ni() {
#if defined(__x86_64__) || defined(__i386__) || defined(_M_X64) || defined(_M_IX86)
  static const bool supported = [] {
    __builtin_cpu_init();
    return __builtin_cpu_supports("sha") != 0;
  }();
  return supported;
#else
  return false;
#endif
}

bool sha_ni_active() { return detected_sha_ni() && active_tier() > SimdTier::kScalar; }

void force_tier_for_testing(std::optional<SimdTier> tier) {
  if (!tier.has_value()) {
    g_active.store(kUnset, std::memory_order_relaxed);
    return;
  }
  const SimdTier detected = detected_tier();
  const SimdTier clamped = *tier < detected ? *tier : detected;
  g_active.store(static_cast<int>(clamped), std::memory_order_relaxed);
}

}  // namespace wavekey::runtime::cpu
