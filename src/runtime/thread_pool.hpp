#pragma once

// Fixed-size thread pool and deterministic parallel-for — the concurrency
// substrate for the batched training hot paths (src/nn) and the concurrent
// pairing engine (core::PairingEngine). Deliberately work-stealing-free:
// work is split into a *fixed, size-derived* number of chunks so that the
// floating-point reduction order — and therefore every trained weight and
// every bench table — is a pure function of (input, pool size), never of
// scheduling luck. DESIGN.md §7 states the full determinism contract.
//
// Thread-safety: ThreadPool::submit may be called from any thread while the
// pool is alive. parallel_for / parallel_for_chunks are safe to call from
// any thread *not* owned by the pool (a worker calling back in would
// deadlock waiting for itself; an assertion guards the debug build). The
// global compute-pool pointer (set_compute_pool / ScopedComputePool) is a
// process-wide, unsynchronized seam: install it while no training or
// inference is in flight.

#include <cstddef>
#include <functional>
#include <future>
#include <thread>
#include <vector>

namespace wavekey::runtime {

/// Fixed-size pool of worker threads over a FIFO task queue.
///
/// Lifecycle contract:
///  * the constructor spawns exactly `size` OS threads (0 is allowed and
///    means "no workers": submit() then runs tasks inline on the caller);
///  * tasks submitted while the pool is alive are never dropped — the
///    destructor closes the queue, lets the workers *drain every pending
///    task*, then joins, so every future returned by submit() is ready once
///    the destructor returns.
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t size);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads (== the `size` given at construction).
  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task; the future carries the task's exception, if any.
  /// With size() == 0 the task runs inline before submit returns.
  /// Throws std::logic_error if called during/after destruction.
  std::future<void> submit(std::function<void()> task);

  /// Best-effort hardware concurrency (>= 1).
  static std::size_t hardware_threads();

 private:
  struct State;  // queue + synchronization, shared with workers
  void worker_loop();

  std::unique_ptr<State> state_;
  std::vector<std::thread> workers_;
};

/// Number of chunks parallel_for_chunks(pool, n, …) will use:
/// min(max(size, 1), max(n, 1)). Depends only on the pool size and n, never
/// on load — this is what makes chunked reductions deterministic.
std::size_t parallel_lanes(const ThreadPool* pool, std::size_t n);

/// Splits [0, n) into parallel_lanes(pool, n) contiguous chunks of
/// near-equal size and runs body(chunk, begin, end) for each. Chunk 0 runs
/// on the calling thread; the rest are submitted to the pool, so a pool of
/// size s yields at most s-way concurrency (caller + s-1 workers busy).
/// With a null pool or size <= 1 this degenerates to one inline
/// body(0, 0, n) call — the serial path, bit for bit.
///
/// All chunks complete before return. If any chunk throws, the first
/// exception (in chunk order: chunk 0's beats the workers') is rethrown
/// after every chunk has finished; the pool remains usable.
void parallel_for_chunks(ThreadPool* pool, std::size_t n,
                         const std::function<void(std::size_t chunk, std::size_t begin,
                                                  std::size_t end)>& body);

/// Element-wise convenience wrapper: body(i) for every i in [0, n), chunked
/// exactly like parallel_for_chunks.
void parallel_for(ThreadPool* pool, std::size_t n, const std::function<void(std::size_t)>& body);

/// Template variant of parallel_for_chunks: identical chunk layout, but the
/// serial path (null pool / size <= 1 / n <= 1) invokes the body directly
/// without materializing a std::function — large lambdas would otherwise
/// heap-allocate even when no pool is installed. The nn hot paths use this
/// so single-threaded steady-state inference performs zero allocations
/// (see tensor.hpp's arena contract). The parallel path delegates to
/// parallel_for_chunks via a non-owning reference wrapper.
template <typename Body>
void for_each_chunk(ThreadPool* pool, std::size_t n, Body&& body) {
  if (parallel_lanes(pool, n) <= 1) {
    body(std::size_t{0}, std::size_t{0}, n);
    return;
  }
  parallel_for_chunks(
      pool, n,
      std::function<void(std::size_t, std::size_t, std::size_t)>(std::ref(body)));
}

/// Element-wise counterpart of for_each_chunk.
template <typename Body>
void for_each_index(ThreadPool* pool, std::size_t n, Body&& body) {
  for_each_chunk(pool, n, [&body](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  });
}

/// Process-global pool consulted by the nn layers for batch-level data
/// parallelism. Defaults to nullptr (fully serial). Not synchronized:
/// install while no compute is in flight.
ThreadPool* compute_pool();
void set_compute_pool(ThreadPool* pool);

/// RAII owner+installer of the global compute pool; restores the previous
/// pool on destruction. `size` 0 installs a no-worker pool (serial inline).
class ScopedComputePool {
 public:
  explicit ScopedComputePool(std::size_t size);
  ~ScopedComputePool();

  ScopedComputePool(const ScopedComputePool&) = delete;
  ScopedComputePool& operator=(const ScopedComputePool&) = delete;

  ThreadPool& pool() { return pool_; }

 private:
  ThreadPool pool_;
  ThreadPool* previous_;
};

}  // namespace wavekey::runtime
