#include "runtime/thread_pool.hpp"

#include <algorithm>
#include <cassert>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <stdexcept>

namespace {
// Which pool (if any) owns the current thread; guards against a worker
// re-entering its own pool's parallel_for and deadlocking on itself.
thread_local const void* t_owning_pool = nullptr;
}  // namespace

namespace wavekey::runtime {

struct ThreadPool::State {
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::packaged_task<void()>> queue;
  bool stopping = false;
};

ThreadPool::ThreadPool(std::size_t size) : state_(std::make_unique<State>()) {
  workers_.reserve(size);
  for (std::size_t i = 0; i < size; ++i) workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    state_->stopping = true;
  }
  state_->cv.notify_all();
  for (std::thread& w : workers_) w.join();
  // No workers: any tasks still queued (possible only via submit() racing
  // destruction, which the contract forbids) would be broken promises; with
  // size 0 the queue is always empty because submit() runs inline.
}

void ThreadPool::worker_loop() {
  t_owning_pool = this;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(state_->mutex);
      state_->cv.wait(lock, [&] { return state_->stopping || !state_->queue.empty(); });
      if (state_->queue.empty()) return;  // stopping && drained
      task = std::move(state_->queue.front());
      state_->queue.pop_front();
    }
    task();  // packaged_task routes exceptions into the future
  }
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  if (workers_.empty()) {
    packaged();  // no workers: inline execution, exception still in the future
    return future;
  }
  {
    std::lock_guard<std::mutex> lock(state_->mutex);
    if (state_->stopping) throw std::logic_error("ThreadPool::submit: pool is shutting down");
    state_->queue.push_back(std::move(packaged));
  }
  state_->cv.notify_one();
  return future;
}

std::size_t ThreadPool::hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

std::size_t parallel_lanes(const ThreadPool* pool, std::size_t n) {
  const std::size_t size = pool ? std::max<std::size_t>(pool->size(), 1) : 1;
  return std::min(size, std::max<std::size_t>(n, 1));
}

void parallel_for_chunks(ThreadPool* pool, std::size_t n,
                         const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  const std::size_t chunks = parallel_lanes(pool, n);
  if (chunks <= 1) {
    body(0, 0, n);
    return;
  }
  assert(t_owning_pool != pool && "parallel_for from a worker of the same pool would deadlock");

  // Fixed chunking: chunk c covers [c*q + min(c,r), …) with q = n/chunks,
  // r = n%chunks — a pure function of (n, chunks), never of scheduling.
  const std::size_t q = n / chunks;
  const std::size_t r = n % chunks;
  const auto bounds = [&](std::size_t c) {
    const std::size_t begin = c * q + std::min(c, r);
    return std::pair<std::size_t, std::size_t>{begin, begin + q + (c < r ? 1 : 0)};
  };

  std::vector<std::future<void>> futures;
  futures.reserve(chunks - 1);
  for (std::size_t c = 1; c < chunks; ++c) {
    const auto [begin, end] = bounds(c);
    futures.push_back(pool->submit([&body, c, begin, end] { body(c, begin, end); }));
  }

  std::exception_ptr first_error;
  try {
    const auto [begin, end] = bounds(0);
    body(0, begin, end);
  } catch (...) {
    first_error = std::current_exception();
  }
  for (std::future<void>& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void parallel_for(ThreadPool* pool, std::size_t n, const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(pool, n, [&body](std::size_t, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) body(i);
  });
}

namespace {
ThreadPool* g_compute_pool = nullptr;
}  // namespace

ThreadPool* compute_pool() { return g_compute_pool; }
void set_compute_pool(ThreadPool* pool) { g_compute_pool = pool; }

ScopedComputePool::ScopedComputePool(std::size_t size)
    : pool_(size), previous_(compute_pool()) {
  set_compute_pool(&pool_);
}

ScopedComputePool::~ScopedComputePool() { set_compute_pool(previous_); }

}  // namespace wavekey::runtime
