#pragma once

// runtime::FlatMap — SwissTable-style open-addressing hash map with an
// intrusive, index-based LRU list (DESIGN.md §13 "Vault data plane").
//
// Built for the KeyVault shard hot path: one contiguous control-byte array
// probed 16 (SSE2/scalar) or 32 (AVX2) slots at a time through the
// runtime::cpu dispatch seam, a parallel u32 index array, and a stable slot
// pool that owns the entries. A lookup is one mixed hash, one vector
// compare, and (usually) one pool access — no per-entry heap nodes, no
// pointer-chasing `std::list` LRU.
//
// Layout (capacity C, always a power of two ≥ 32):
//   ctrl_  : C + 16 bytes. ctrl_[i] is kEmpty (0x80), kDeleted (0xFE
//            tombstone) or the 7-bit H2 tag of the resident key. The 16-byte
//            tail mirrors ctrl_[0..15] so a 32-byte probe window starting at
//            the last group wraps without a branch.
//   index_ : C u32 entries; index_[i] is the pool slot behind ctrl_[i]
//            (garbage unless ctrl_[i] holds a tag).
//   pool_  : stable entry storage {key, lru_prev, lru_next, value}. Slots
//            are recycled through a freelist threaded via lru_next. Pool
//            indices survive rehash — only ctrl_/index_ are rebuilt — so
//            callers may hold an index across inserts of *other* keys.
//
// Probing: H1 picks a 16-aligned group, the scan proceeds linearly group by
// group (wrapping), and every SIMD tier visits slots in the exact same
// order — the AVX2 kernel scans two consecutive groups per step and selects
// matches lowest-bit-first, which is precisely the scalar order. The map's
// state is therefore bit-identical under WAVEKEY_SIMD=scalar, which the
// forced-scalar differential test asserts.
//
// Deletion always writes a tombstone (never re-derives "empty", which would
// make state depend on group alignment); tombstones are purged by a
// same-size rehash when the load budget runs out. Max load factor is 7/8.
//
// Not thread-safe; the vault wraps one FlatMap per shard under the shard
// mutex.

#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "runtime/cpu.hpp"

namespace wavekey::runtime {

namespace flat_map_detail {

inline constexpr std::uint8_t kCtrlEmpty = 0x80;
inline constexpr std::uint8_t kCtrlDeleted = 0xFE;
inline constexpr std::size_t kGroupWidth = 16;  // slots per control group
inline constexpr std::size_t kCtrlTail = 16;    // mirrored wrap window

/// Per-tier control-byte scan kernels. Masks are little-endian bit-per-byte:
/// bit i set means position (window_offset + i) matched. `width` is the
/// window the kernel consumes per step (16 or 32 bytes); all kernels select
/// matches lowest-bit-first so slot visit order is tier-independent.
struct ScanOps {
  std::uint32_t (*match_tag)(const std::uint8_t* window, std::uint8_t tag);
  std::uint32_t (*match_empty)(const std::uint8_t* window);
  std::uint32_t (*match_available)(const std::uint8_t* window);  // empty|deleted
  std::uint32_t width;
};

/// Kernels for the process-wide active tier (resolved once per call; cache
/// the pointer in long-lived structures).
const ScanOps& scan_ops();

/// Kernels for an explicit tier — lets tests sweep scalar/sse2/avx2 against
/// each other without touching the global tier.
const ScanOps& scan_ops_for(cpu::SimdTier tier);

/// AVX2 kernel table from flat_map_avx2.cpp, or nullptr when the binary was
/// built without AVX2 support for that TU.
const ScanOps* avx2_scan_ops();

/// splitmix64 finalizer: the map's whole-hash for u64 keys. Callers that
/// pre-shard by the same mix (KeyVault) still get independent bits here
/// because the shard only consumes the low bits of the mix once more.
inline std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

inline int countr_zero32(std::uint32_t m) { return __builtin_ctz(m); }

}  // namespace flat_map_detail

/// Open-addressing u64→V map with intrusive LRU. See file comment.
template <typename V>
class FlatMap {
 public:
  /// Sentinel pool index: "no entry" / end of LRU list.
  static constexpr std::uint32_t kNil = 0xFFFFFFFFu;

  FlatMap() : ops_(&flat_map_detail::scan_ops()) {}
  explicit FlatMap(const flat_map_detail::ScanOps& ops) : ops_(&ops) {}

  FlatMap(FlatMap&&) noexcept = default;
  FlatMap& operator=(FlatMap&&) noexcept = default;
  FlatMap(const FlatMap&) = delete;
  FlatMap& operator=(const FlatMap&) = delete;

  /// Pool index of `key`, or kNil. Does not touch LRU order.
  std::uint32_t find_index(std::uint64_t key) const {
    if (capacity_ == 0) return kNil;
    const std::uint64_t h = flat_map_detail::mix64(key);
    const std::uint8_t tag = h2(h);
    const std::size_t mask = capacity_ - 1;
    std::size_t off = group_offset(h);
    for (std::size_t scanned = 0; scanned <= capacity_;
         scanned += ops_->width, off = (off + ops_->width) & mask) {
      const std::uint8_t* window = ctrl_.get() + off;
      std::uint32_t m = ops_->match_tag(window, tag);
      while (m != 0) {
        const std::size_t slot = (off + flat_map_detail::countr_zero32(m)) & mask;
        const std::uint32_t idx = index_[slot];
        if (pool_[idx].key == key) return idx;
        m &= m - 1;
      }
      if (ops_->match_empty(window) != 0) return kNil;
    }
    return kNil;
  }

  V* find(std::uint64_t key) {
    const std::uint32_t idx = find_index(key);
    return idx == kNil ? nullptr : &pool_[idx].value;
  }
  const V* find(std::uint64_t key) const {
    const std::uint32_t idx = find_index(key);
    return idx == kNil ? nullptr : &pool_[idx].value;
  }

  /// Finds `key` or inserts a default-constructed V for it. Returns
  /// {pool index, inserted}. A fresh insert becomes the LRU head (most
  /// recent); an existing entry's LRU position is NOT changed (call touch()).
  std::pair<std::uint32_t, bool> find_or_insert(std::uint64_t key) {
    if (capacity_ == 0) rehash(kMinCapacity);
    const std::uint64_t h = flat_map_detail::mix64(key);
    const std::uint8_t tag = h2(h);
    while (true) {
      const std::size_t mask = capacity_ - 1;
      std::size_t off = group_offset(h);
      std::size_t insert_slot = kNoSlot;
      for (;;) {
        const std::uint8_t* window = ctrl_.get() + off;
        std::uint32_t m = ops_->match_tag(window, tag);
        while (m != 0) {
          const std::size_t slot = (off + flat_map_detail::countr_zero32(m)) & mask;
          const std::uint32_t idx = index_[slot];
          if (pool_[idx].key == key) return {idx, false};
          m &= m - 1;
        }
        if (insert_slot == kNoSlot) {
          const std::uint32_t a = ops_->match_available(window);
          if (a != 0) insert_slot = (off + flat_map_detail::countr_zero32(a)) & mask;
        }
        if (ops_->match_empty(window) != 0) break;
        off = (off + ops_->width) & mask;
      }
      // Key absent. Taking an empty slot consumes load budget; if the
      // budget is gone, rehash (dropping tombstones, growing if genuinely
      // full) and retry the whole probe against the new arrays.
      const bool takes_empty = ctrl_.get()[insert_slot] == flat_map_detail::kCtrlEmpty;
      if (takes_empty && growth_left_ == 0) {
        rehash(size_ >= capacity_ / 2 ? capacity_ * 2 : capacity_);
        continue;
      }
      if (takes_empty) {
        --growth_left_;
      } else {
        --tombstones_;
      }
      const std::uint32_t idx = alloc_slot(key);
      set_ctrl(insert_slot, tag);
      index_[insert_slot] = idx;
      ++size_;
      lru_push_head(idx);
      return {idx, true};
    }
  }

  /// Erases `key`; returns false if absent.
  bool erase(std::uint64_t key) {
    const std::uint32_t idx = find_index(key);
    if (idx == kNil) return false;
    erase_index(idx);
    return true;
  }

  /// Erases the entry behind a pool index previously returned by
  /// find_index/find_or_insert/lru_tail. O(probe) to locate the ctrl slot.
  void erase_index(std::uint32_t idx) {
    const std::uint64_t key = pool_[idx].key;
    const std::size_t slot = ctrl_slot_of(key, idx);
    set_ctrl(slot, flat_map_detail::kCtrlDeleted);
    ++tombstones_;
    --size_;
    lru_unlink(idx);
    free_slot(idx);
  }

  /// Moves `idx` to the LRU head (most recently used).
  void touch(std::uint32_t idx) {
    if (lru_head_ == idx) return;
    lru_unlink(idx);
    lru_push_head(idx);
  }

  /// Pool index of the least recently used entry, or kNil when empty.
  std::uint32_t lru_tail() const { return lru_tail_; }

  std::uint64_t key_at(std::uint32_t idx) const { return pool_[idx].key; }
  V& at(std::uint32_t idx) { return pool_[idx].value; }
  const V& at(std::uint32_t idx) const { return pool_[idx].value; }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  std::size_t capacity() const { return capacity_; }

  /// Ensures `n` entries fit without rehashing.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap * 7 / 8 < n) cap *= 2;
    if (cap > capacity_) rehash(cap);
  }

  void clear() {
    if (capacity_ != 0) {
      std::memset(ctrl_.get(), flat_map_detail::kCtrlEmpty,
                  capacity_ + flat_map_detail::kCtrlTail);
    }
    pool_.clear();
    free_head_ = kNil;
    lru_head_ = lru_tail_ = kNil;
    size_ = 0;
    tombstones_ = 0;
    growth_left_ = capacity_ * 7 / 8;
  }

  /// Visits entries oldest-first (LRU tail → head): f(key, value).
  /// This is the canonical export order — re-inserting in this order
  /// reproduces the exact LRU list.
  template <typename F>
  void for_each_lru_oldest_first(F&& f) const {
    for (std::uint32_t idx = lru_tail_; idx != kNil; idx = pool_[idx].lru_prev) {
      f(pool_[idx].key, pool_[idx].value);
    }
  }

  /// Heap bytes owned by the map (ctrl + index + pool storage).
  std::size_t memory_bytes() const {
    return (capacity_ == 0 ? 0 : capacity_ + flat_map_detail::kCtrlTail) +
           capacity_ * sizeof(std::uint32_t) + pool_.capacity() * sizeof(Slot);
  }

 private:
  static constexpr std::size_t kMinCapacity = 32;  // ≥ 2 groups so the AVX2
                                                   // 32-byte window never
                                                   // overlaps itself
  static constexpr std::size_t kNoSlot = ~std::size_t{0};

  struct Slot {
    std::uint64_t key = 0;
    std::uint32_t lru_prev = kNil;  // toward MRU head
    std::uint32_t lru_next = kNil;  // toward LRU tail; freelist link when free
    V value = V();
  };

  static std::uint8_t h2(std::uint64_t h) {
    return static_cast<std::uint8_t>(h >> 57);  // top 7 bits, 0x00..0x7F
  }

  std::size_t group_offset(std::uint64_t h) const {
    const std::size_t ngroups = capacity_ / flat_map_detail::kGroupWidth;
    return ((h >> 7) & (ngroups - 1)) * flat_map_detail::kGroupWidth;
  }

  /// Writes a ctrl byte, maintaining the mirrored tail.
  void set_ctrl(std::size_t slot, std::uint8_t v) {
    ctrl_.get()[slot] = v;
    if (slot < flat_map_detail::kCtrlTail) ctrl_.get()[capacity_ + slot] = v;
  }

  /// Locates the ctrl slot that holds pool index `idx` for `key` by probing.
  std::size_t ctrl_slot_of(std::uint64_t key, std::uint32_t idx) const {
    const std::uint64_t h = flat_map_detail::mix64(key);
    const std::uint8_t tag = h2(h);
    const std::size_t mask = capacity_ - 1;
    std::size_t off = group_offset(h);
    for (;;) {
      std::uint32_t m = ops_->match_tag(ctrl_.get() + off, tag);
      while (m != 0) {
        const std::size_t slot = (off + flat_map_detail::countr_zero32(m)) & mask;
        if (index_[slot] == idx) return slot;
        m &= m - 1;
      }
      off = (off + ops_->width) & mask;
    }
  }

  std::uint32_t alloc_slot(std::uint64_t key) {
    std::uint32_t idx;
    if (free_head_ != kNil) {
      idx = free_head_;
      free_head_ = pool_[idx].lru_next;
      pool_[idx].value = V();
    } else {
      idx = static_cast<std::uint32_t>(pool_.size());
      pool_.emplace_back();
    }
    pool_[idx].key = key;
    return idx;
  }

  void free_slot(std::uint32_t idx) {
    pool_[idx].lru_next = free_head_;
    free_head_ = idx;
  }

  void lru_push_head(std::uint32_t idx) {
    pool_[idx].lru_prev = kNil;
    pool_[idx].lru_next = lru_head_;
    if (lru_head_ != kNil) pool_[lru_head_].lru_prev = idx;
    lru_head_ = idx;
    if (lru_tail_ == kNil) lru_tail_ = idx;
  }

  void lru_unlink(std::uint32_t idx) {
    const std::uint32_t p = pool_[idx].lru_prev;
    const std::uint32_t n = pool_[idx].lru_next;
    if (p != kNil) pool_[p].lru_next = n; else lru_head_ = n;
    if (n != kNil) pool_[n].lru_prev = p; else lru_tail_ = p;
  }

  /// Rebuilds ctrl_/index_ at `new_cap` (which may equal capacity_ — that
  /// purges tombstones). Pool slots and LRU links are untouched, so pool
  /// indices held by callers stay valid.
  void rehash(std::size_t new_cap) {
    // Pool indices and LRU links are 32-bit; a table this large is outside
    // the design envelope (and the check lets the compiler bound the memset).
    if (new_cap > (std::size_t{1} << 32))
      throw std::length_error("FlatMap: capacity exceeds 2^32 slots");
    auto new_ctrl = std::make_unique<std::uint8_t[]>(new_cap + flat_map_detail::kCtrlTail);
    std::memset(new_ctrl.get(), flat_map_detail::kCtrlEmpty,
                new_cap + flat_map_detail::kCtrlTail);
    auto new_index = std::make_unique<std::uint32_t[]>(new_cap);

    const std::size_t old_cap = capacity_;
    ctrl_.swap(new_ctrl);
    index_.swap(new_index);
    capacity_ = new_cap;
    (void)old_cap;

    // Re-place every live entry; all slots are empty so the first available
    // slot in probe order is the insert position (tier-independent).
    for (std::uint32_t idx = lru_head_; idx != kNil; idx = pool_[idx].lru_next) {
      const std::uint64_t h = flat_map_detail::mix64(pool_[idx].key);
      const std::uint8_t tag = h2(h);
      const std::size_t mask = capacity_ - 1;
      std::size_t off = group_offset(h);
      for (;;) {
        const std::uint32_t a = ops_->match_available(ctrl_.get() + off);
        if (a != 0) {
          const std::size_t slot = (off + flat_map_detail::countr_zero32(a)) & mask;
          set_ctrl(slot, tag);
          index_[slot] = idx;
          break;
        }
        off = (off + ops_->width) & mask;
      }
    }
    tombstones_ = 0;
    growth_left_ = capacity_ * 7 / 8 - size_;
  }

  const flat_map_detail::ScanOps* ops_;
  std::unique_ptr<std::uint8_t[]> ctrl_;
  std::unique_ptr<std::uint32_t[]> index_;
  std::vector<Slot> pool_;
  std::size_t capacity_ = 0;
  std::size_t size_ = 0;
  std::size_t tombstones_ = 0;
  std::size_t growth_left_ = 0;
  std::uint32_t free_head_ = kNil;
  std::uint32_t lru_head_ = kNil;
  std::uint32_t lru_tail_ = kNil;
};

}  // namespace wavekey::runtime
