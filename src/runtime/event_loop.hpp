#pragma once

// N-thread coroutine executor with a hierarchical timer wheel.
//
// The serving core (AccessServer, ReaderGateway) used to burn one OS thread
// per in-flight request: workers parked in std::this_thread::sleep_for on
// emulated actuation I/O and on retry backoff, capping concurrency at the
// worker-pool size. EventLoop replaces the park with a suspend: a request is
// a Task<void> coroutine, `co_await loop.sleep_for(t)` files the suspended
// frame into a timer wheel and frees the worker, and `co_await queue.pop()`
// suspends until a producer hands an item over. 10k+ grants can be in flight
// on 4 threads; the only per-request cost while parked is the coroutine
// frame.
//
// Components:
//  - EventLoop: fixed worker threads draining a ready queue of coroutine
//    handles, plus one timer thread owning the wheel. spawn() launches a
//    detached Task<void>; drain() blocks until every spawned task finished.
//  - sleep_for(seconds): awaitable; the frame is resumed by a worker once
//    the wheel expires it. Resolution is one wheel tick (100 us).
//  - AsyncQueue<T>: bounded MPMC channel; producers use blocking push /
//    non-blocking try_push from plain threads, consumers `co_await pop()`.
//    close() wakes every parked consumer with nullopt after the backlog
//    drains — this is the notify-driven shutdown that replaces the old
//    fixed-slice try_pop_for polling loop.
//
// Timer wheel: 4 levels x 64 slots at 100 us/tick (spans 6.4 ms, 409.6 ms,
// 26.2 s, ~28 min; farther deadlines clamp into the top level and re-cascade).
// Insert and expire are O(1) amortized; the timer thread sleeps until the
// next expiry hint and waits indefinitely when no timers are pending — it
// never polls.
//
// Thread-safety: all public methods are thread-safe. A coroutine handle is
// owned by exactly one queue (ready deque, wheel slot, or AsyncQueue waiter
// list) at a time, so each frame is resumed by exactly one worker.

#include <atomic>
#include <condition_variable>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "runtime/task.hpp"

namespace wavekey::runtime {

/// Monotonic counters mirrored under one lock — same snapshot discipline as
/// AccessServerStats: `spawned == completed + active` holds on every read.
struct EventLoopStats {
  std::uint64_t spawned = 0;           ///< tasks accepted by spawn()
  std::uint64_t completed = 0;         ///< tasks that ran to completion
  std::uint64_t posts = 0;             ///< handles enqueued on the ready queue
  std::uint64_t timers_scheduled = 0;  ///< sleep_for suspensions filed
  std::uint64_t timers_fired = 0;      ///< wheel expirations posted
  std::uint64_t active = 0;            ///< spawned - completed
};

class EventLoop {
 public:
  /// Starts `threads` workers (min 1) plus the timer thread.
  explicit EventLoop(std::size_t threads);
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Launches a detached task. Returns false (task destroyed unstarted) if
  /// the loop is closed. The task's frame is destroyed as soon as it
  /// completes; an exception escaping a spawned task terminates (detached
  /// tasks have no awaiter to rethrow into — handle errors in the task).
  bool spawn(Task<void> task);

  /// Awaitable: suspends the coroutine for `seconds` (wall clock), resuming
  /// on a worker thread. Non-positive durations resume immediately without
  /// suspending, so zero-backoff retry loops stay synchronous and fast.
  auto sleep_for(double seconds) noexcept {
    struct SleepAwaiter {
      EventLoop* loop;
      double seconds;
      bool await_ready() const noexcept { return seconds <= 0.0; }
      void await_suspend(std::coroutine_handle<> h) { loop->schedule_timer(h, seconds); }
      void await_resume() const noexcept {}
    };
    return SleepAwaiter{this, seconds};
  }

  /// Refuses further spawns. Already-spawned tasks keep running.
  void close();
  bool closed() const;

  /// Blocks until every spawned task has completed. Call close() first if
  /// producers might still be spawning.
  void drain();

  EventLoopStats stats() const;
  std::size_t threads() const { return workers_.size(); }

  /// Enqueues a suspended handle for resumption on a worker thread.
  /// (Public for awaiter implementations; not a user entry point.)
  void post(std::coroutine_handle<> h);

 private:
  friend struct detail_spawn_access;

  void worker_main();
  void timer_main();
  void schedule_timer(std::coroutine_handle<> h, double seconds);
  void task_finished();

  // Ready queue.
  mutable std::mutex ready_mutex_;
  std::condition_variable ready_cv_;
  std::deque<std::coroutine_handle<>> ready_;
  bool stopping_ = false;

  // Lifecycle (guarded by stats_mutex_): spawned == completed + active is
  // snapshot-consistent. Throughput counters are relaxed atomics — they sit
  // on the post/timer hot paths and carry no invariant of their own.
  mutable std::mutex stats_mutex_;
  std::condition_variable drained_cv_;
  std::uint64_t spawned_ = 0;
  std::uint64_t completed_ = 0;
  bool closed_ = false;
  std::atomic<std::uint64_t> posts_{0};
  std::atomic<std::uint64_t> timers_scheduled_{0};
  std::atomic<std::uint64_t> timers_fired_{0};

  // Timer wheel (guarded by timer_mutex_; layout in event_loop.cpp).
  struct TimerWheel;
  mutable std::mutex timer_mutex_;
  std::condition_variable timer_cv_;
  TimerWheel* wheel_ = nullptr;  // owned; defined in the .cpp
  bool timer_stop_ = false;

  std::vector<std::thread> workers_;
  std::thread timer_thread_;
};

/// Bounded MPMC channel bridging plain threads (producers) and coroutines
/// (consumers). Pop order is FIFO; items enqueued before close() are always
/// delivered before the nullopt wake.
template <typename T>
class AsyncQueue {
 public:
  enum class PushResult { kOk, kFull, kClosed };

  AsyncQueue(EventLoop& loop, std::size_t capacity)
      : loop_(loop), capacity_(capacity ? capacity : 1) {}

  AsyncQueue(const AsyncQueue&) = delete;
  AsyncQueue& operator=(const AsyncQueue&) = delete;

  /// Blocking push with backpressure: waits while the queue is at capacity
  /// and no consumer is parked. Returns false if the queue is closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] {
      return closed_ || !waiters_.empty() || items_.size() < capacity_;
    });
    if (closed_) return false;
    if (!waiters_.empty()) {
      hand_off(std::move(item), lock);
      return true;
    }
    items_.push_back(std::move(item));
    return true;
  }

  /// Non-blocking push; kFull when at capacity with no parked consumer.
  PushResult try_push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_) return PushResult::kClosed;
    if (!waiters_.empty()) {
      hand_off(std::move(item), lock);
      return PushResult::kOk;
    }
    if (items_.size() >= capacity_) return PushResult::kFull;
    items_.push_back(std::move(item));
    return PushResult::kOk;
  }

  struct PopAwaiter {
    AsyncQueue* queue;
    std::optional<T> item;

    // All state inspection happens in await_suspend under the queue mutex:
    // checking emptiness in await_ready and suspending afterwards would lose
    // an item pushed between the two steps.
    bool await_ready() const noexcept { return false; }
    bool await_suspend(std::coroutine_handle<> h) {
      std::unique_lock<std::mutex> lock(queue->mutex_);
      if (!queue->items_.empty()) {
        item.emplace(std::move(queue->items_.front()));
        queue->items_.pop_front();
        lock.unlock();
        queue->not_full_.notify_one();
        return false;  // resume immediately with the item
      }
      if (queue->closed_) return false;  // resume immediately with nullopt
      queue->waiters_.push_back(Waiter{h, &item});
      return true;
    }
    std::optional<T> await_resume() noexcept { return std::move(item); }
  };

  /// Awaitable pop: suspends until an item arrives or the queue closes
  /// (nullopt). Consumers must run on the owning EventLoop.
  PopAwaiter pop() { return PopAwaiter{this, std::nullopt}; }

  /// Closes the queue: pending items still drain to consumers; parked
  /// consumers wake with nullopt; producers see kClosed/false.
  void close() {
    std::deque<Waiter> parked;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return;
      closed_ = true;
      parked.swap(waiters_);
    }
    not_full_.notify_all();
    for (const Waiter& w : parked) loop_.post(w.handle);  // slots stay nullopt
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }
  std::size_t capacity() const { return capacity_; }

 private:
  friend struct PopAwaiter;

  struct Waiter {
    std::coroutine_handle<> handle;
    std::optional<T>* slot;  ///< lives in the suspended frame's awaiter
  };

  /// Pre: lock held, waiters_ non-empty. Fills the front waiter's slot and
  /// posts its handle outside the lock.
  void hand_off(T item, std::unique_lock<std::mutex>& lock) {
    Waiter w = waiters_.front();
    waiters_.pop_front();
    w.slot->emplace(std::move(item));
    lock.unlock();
    loop_.post(w.handle);
  }

  EventLoop& loop_;
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  std::deque<Waiter> waiters_;
  bool closed_ = false;
};

}  // namespace wavekey::runtime
