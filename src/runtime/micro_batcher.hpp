#pragma once

// Deadline-aware micro-batcher: coalesces items submitted concurrently by
// many threads into one batch, dispatched when either the batch reaches
// `max_batch` items or the *oldest* held item has waited `max_hold_s`
// seconds. The caller of submit() blocks until its batch is flushed and
// receives its own result plus the measured hold time, so every microsecond
// an item spent waiting for co-batched work can be charged to that item's
// own (virtual-clock) budget — batching amortizes compute, never hides
// latency from the tau accounting (DESIGN.md §11.2).
//
// Dispatch is leader/follower: no dedicated dispatcher thread exists. The
// submitter that fills the batch — or the waiter whose deadline fires first
// while its batch is still collecting — detaches the batch and runs the
// flush function itself; co-batched submitters keep waiting on their batch's
// own condition variable until the leader publishes the results (per-batch
// cvs, so flushing batch k never context-switches batch k+1's sleepers
// awake). close() makes
// the closing thread the leader of the final partial batch, so shutdown
// drains every held item without loss (pinned by the MicroBatcher.
// CloseDrainsHeldItemsWithoutLoss / ConcurrentSoakResolvesEveryItemExactlyOnce
// tests).
//
// Two batches can be in flight at once (batch k+1 collects while the leader
// of batch k is inside flush). The flush function must therefore be safe to
// call from multiple threads, or serialize internally — BatchedEncoderService
// does the latter, because the underlying nn::Sequential is externally
// synchronized (layer.hpp).
//
// Thread-safety: submit()/close()/stats() are safe from any thread. The
// same wait/notify discipline as runtime::BoundedQueue applies: every state
// flag is mutated under the one mutex and notified via notify_all, so a
// timed waiter racing close() either observes the flushed results or
// becomes the leader itself — there is no window in which an item can be
// dropped (see bounded_queue.hpp "Lost-wakeup audit" and the
// BoundedQueueClose* regression tests).

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace wavekey::runtime {

struct MicroBatcherConfig {
  std::size_t max_batch = 16;   ///< dispatch as soon as this many items held
  double max_hold_s = 500e-6;   ///< dispatch when the oldest item waited this long
};

/// Aggregate counters (monotonic; snapshot via stats()).
struct MicroBatcherStats {
  std::uint64_t items = 0;            ///< items submitted and flushed
  std::uint64_t batches = 0;          ///< flush calls
  std::uint64_t full_dispatches = 0;  ///< batches dispatched on max_batch
  std::uint64_t deadline_dispatches = 0;  ///< batches dispatched on max_hold
  std::uint64_t drain_dispatches = 0;     ///< partial batches flushed by close()
  double max_hold_s = 0.0;            ///< largest observed per-item hold
};

/// See file comment. `Item` and `Result` must be movable. The flush function
/// receives the coalesced items and must return exactly one result per item,
/// in order; a size mismatch or an exception fails every member of that
/// batch (submit() rethrows as std::runtime_error), never a hang.
template <typename Item, typename Result>
class MicroBatcher {
 public:
  using Clock = std::chrono::steady_clock;
  using FlushFn = std::function<std::vector<Result>(std::vector<Item>&)>;

  /// One submitter's share of a flushed batch.
  struct Ticket {
    Result value{};
    double hold_s = 0.0;        ///< submit -> flush dispatch (wall time)
    std::size_t batch_size = 0; ///< items coalesced into this GEMM batch
    bool deadline_dispatch = false;  ///< batch went out on max_hold, not size
  };

  MicroBatcher(const MicroBatcherConfig& config, FlushFn flush)
      : config_(sanitize(config)), flush_(std::move(flush)) {
    if (!flush_) throw std::invalid_argument("MicroBatcher: null flush function");
  }

  ~MicroBatcher() { close(); }

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Blocks until the item's batch has been flushed; returns this item's
  /// result + hold accounting. Returns nullopt once close() has been called
  /// (the item was NOT enqueued). Throws std::runtime_error if the flush
  /// function failed for this batch.
  std::optional<Ticket> submit(Item item) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_) return std::nullopt;

    const Clock::time_point now = Clock::now();
    if (!current_) {
      current_ = std::make_shared<Batch>();
      current_->deadline = now + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<double>(config_.max_hold_s));
    }
    const std::shared_ptr<Batch> batch = current_;
    const std::size_t index = batch->items.size();
    batch->items.push_back(std::move(item));
    batch->enqueued.push_back(now);

    if (batch->items.size() >= config_.max_batch) {
      // This submitter completed the batch: detach and lead the flush.
      current_.reset();
      flush_locked(lock, batch, DispatchCause::kFull);
    } else {
      wait_for_flush(lock, batch);
    }
    return make_ticket(batch, index);
  }

  /// Idempotent. Flushes the currently-collecting partial batch (the closing
  /// thread is its leader), then fails all future submits fast. Items whose
  /// batch is mid-flush on another leader are unaffected — their leader will
  /// publish results as usual.
  void close() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (closed_) return;
    closed_ = true;
    if (current_) {
      // The closer leads the final partial batch; flush_locked wakes its
      // followers. No other thread can be parked: every sleeper waits on
      // some batch's cv, and every detached batch has a leader mid-flush
      // that will publish and notify it.
      const std::shared_ptr<Batch> batch = current_;
      current_.reset();
      flush_locked(lock, batch, DispatchCause::kDrain);
    }
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  MicroBatcherStats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  const MicroBatcherConfig& config() const { return config_; }

 private:
  enum class DispatchCause { kFull, kDeadline, kDrain };

  struct Batch {
    std::vector<Item> items;
    std::vector<Clock::time_point> enqueued;
    std::vector<double> hold_s;      ///< filled at dispatch, one per item
    std::vector<Result> results;     ///< filled by the leader's flush
    Clock::time_point deadline;      ///< oldest item's max-hold instant
    bool flushed = false;            ///< results (or error) published
    bool failed = false;
    bool deadline_dispatch = false;
    std::string error;
    /// Per-batch wakeup channel (guarded by the batcher mutex). A shared
    /// condition variable would wake every parked submitter on every
    /// publication — with two batches in flight, flushing batch k would
    /// context-switch batch k+1's sleepers awake just to re-check a false
    /// predicate, a measurable per-session tax on few-core hosts. Followers
    /// therefore park on their own batch's cv and a leader wakes exactly the
    /// threads whose results it published.
    std::condition_variable cv;
  };

  static MicroBatcherConfig sanitize(MicroBatcherConfig c) {
    if (c.max_batch < 1) c.max_batch = 1;
    if (c.max_hold_s < 0.0) c.max_hold_s = 0.0;
    return c;
  }

  /// Leader path. Called with the lock held and `batch` already detached
  /// from current_; flushes outside the lock, publishes under it.
  void flush_locked(std::unique_lock<std::mutex>& lock, const std::shared_ptr<Batch>& batch,
                    DispatchCause cause) {
    const Clock::time_point dispatch = Clock::now();
    batch->hold_s.reserve(batch->items.size());
    for (const Clock::time_point t : batch->enqueued)
      batch->hold_s.push_back(std::chrono::duration<double>(dispatch - t).count());
    batch->deadline_dispatch = cause == DispatchCause::kDeadline;

    stats_.items += batch->items.size();
    stats_.batches += 1;
    switch (cause) {
      case DispatchCause::kFull: stats_.full_dispatches += 1; break;
      case DispatchCause::kDeadline: stats_.deadline_dispatches += 1; break;
      case DispatchCause::kDrain: stats_.drain_dispatches += 1; break;
    }
    for (const double h : batch->hold_s)
      if (h > stats_.max_hold_s) stats_.max_hold_s = h;

    lock.unlock();
    std::vector<Result> results;
    std::string error;
    try {
      results = flush_(batch->items);
      if (results.size() != batch->items.size())
        error = "MicroBatcher: flush returned " + std::to_string(results.size()) +
                " results for " + std::to_string(batch->items.size()) + " items";
    } catch (const std::exception& e) {
      error = e.what();
    } catch (...) {
      error = "MicroBatcher: flush threw a non-exception";
    }
    lock.lock();
    if (error.empty()) {
      batch->results = std::move(results);
    } else {
      batch->failed = true;
      batch->error = std::move(error);
    }
    batch->flushed = true;
    // Notify with the mutex released: waking followers while holding it
    // would make each of them block on the mutex futex straight out of the
    // cv wait — one extra syscall round-trip per follower per batch. Safe:
    // `flushed` was set under the mutex, so a follower that acquires it
    // after this unlock observes the flag and never parks, and followers
    // already parked get the notification.
    lock.unlock();
    batch->cv.notify_all();
    lock.lock();
  }

  /// Follower path: waits until `batch` is flushed, assuming leadership if
  /// the deadline fires while the batch is still collecting. The predicate
  /// is re-evaluated under the mutex on every wakeup, so a deadline that
  /// races the batch-completing submitter (or close()) resolves to exactly
  /// one leader: whoever detaches the batch from current_ first.
  void wait_for_flush(std::unique_lock<std::mutex>& lock, const std::shared_ptr<Batch>& batch) {
    while (!batch->flushed) {
      if (current_ == batch) {
        // Batch still collecting: sleep until the deadline, a co-batched
        // leader's publication, or close().
        if (batch->cv.wait_until(lock, batch->deadline) == std::cv_status::timeout &&
            current_ == batch && !batch->flushed) {
          current_.reset();
          flush_locked(lock, batch, DispatchCause::kDeadline);
          return;
        }
      } else {
        // Detached: a leader owns it; just wait for the results.
        batch->cv.wait(lock);
      }
    }
  }

  /// Called with the lock held, after batch->flushed.
  std::optional<Ticket> make_ticket(const std::shared_ptr<Batch>& batch, std::size_t index) {
    if (batch->failed) throw std::runtime_error(batch->error);
    Ticket ticket;
    ticket.value = std::move(batch->results[index]);
    ticket.hold_s = batch->hold_s[index];
    ticket.batch_size = batch->items.size();
    ticket.deadline_dispatch = batch->deadline_dispatch;
    return ticket;
  }

  const MicroBatcherConfig config_;
  const FlushFn flush_;
  mutable std::mutex mutex_;
  std::shared_ptr<Batch> current_;  ///< batch currently collecting (may be null)
  bool closed_ = false;
  MicroBatcherStats stats_;
};

}  // namespace wavekey::runtime
