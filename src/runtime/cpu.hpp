#pragma once

// Runtime CPU feature detection and SIMD-tier dispatch (DESIGN.md §8.5).
//
// Every vectorized kernel in the tree (nn/gemm, ecc/gf256, crypto/chacha20)
// selects its implementation through one seam: `cpu::active_tier()`. The
// ladder is kAvx2 (AVX2 + FMA) → kSse2 (x86-64 baseline) → kScalar
// (portable C++), and the chosen tier can only ever be *lowered*, never
// raised above what the hardware reports — forcing `avx2` on a machine
// without it silently clamps to the detected tier instead of faulting.
//
// Override: the environment variable WAVEKEY_SIMD=scalar|sse2|avx2 pins the
// tier for the whole process (read once, on first use). Unknown values are
// ignored with a warning. The decision is logged to stderr exactly once so
// every bench/test log records which code path actually ran.
//
// Thread-safety: active_tier()/detected_tier() are safe from any thread
// (atomic cache, idempotent initialization). force_tier_for_testing() is a
// test/bench-only hook and must not race with kernels in flight.

#include <optional>

namespace wavekey::runtime::cpu {

/// SIMD capability ladder, ordered so that numeric comparison means
/// "at least as capable as".
enum class SimdTier : int {
  kScalar = 0,  // portable C++ only
  kSse2 = 1,    // 128-bit integer/float vectors (x86-64 baseline)
  kAvx2 = 2,    // 256-bit vectors + FMA
};

/// Human-readable tier name ("scalar" / "sse2" / "avx2").
const char* tier_name(SimdTier tier);

/// Highest tier the hardware supports (cached after the first call).
SimdTier detected_tier();

/// Tier the dispatch seam actually uses: detected_tier() clamped by the
/// WAVEKEY_SIMD override. Logged to stderr once per process.
SimdTier active_tier();

/// Pure resolution rule behind active_tier(): parses `env` (may be null)
/// and clamps to `detected`. Exposed so tests can exercise the parsing
/// without touching process environment or the cached state.
SimdTier resolve_tier(const char* env, SimdTier detected);

/// Test/bench-only: pins active_tier() to min(tier, detected_tier()) until
/// reset with std::nullopt (which re-applies the environment policy). Not
/// safe to call while kernels run on other threads.
void force_tier_for_testing(std::optional<SimdTier> tier);

/// True iff the hardware executes the SHA-NI extension (sha256rnds2 et al).
/// Orthogonal to the vector-width ladder: a capability probe, not a tier.
bool detected_sha_ni();

/// True iff the SHA-256 kernel may use SHA-NI right now: the hardware has it
/// AND the active tier is above scalar — so WAVEKEY_SIMD=scalar (and
/// force_tier_for_testing(kScalar)) pins hashing to the portable kernel
/// together with every other vectorized path.
bool sha_ni_active();

}  // namespace wavekey::runtime::cpu
