#pragma once

// Bounded multi-producer/multi-consumer queue — the admission channel of
// core::PairingEngine. A full queue *blocks* producers (backpressure, so a
// flood of pairing requests degrades into queue-wait latency instead of
// unbounded memory growth), an empty queue blocks consumers, and close()
// wakes everyone: producers start failing fast, consumers drain whatever is
// left and then observe end-of-stream.
//
// Thread-safety: every public method is safe to call concurrently from any
// thread (one mutex, two condition variables). T only needs to be movable.

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>

namespace wavekey::runtime {

/// Outcome of BoundedQueue::try_push — distinguishes "full right now" (the
/// caller may shed the item and keep serving) from "closed" (the caller
/// should stop producing altogether).
enum class PushResult {
  kOk,
  kFull,
  kClosed,
};

template <typename T>
class BoundedQueue {
 public:
  /// @param capacity  maximum queued items; must be >= 1.
  explicit BoundedQueue(std::size_t capacity) : capacity_(capacity < 1 ? 1 : capacity) {}

  /// Blocks while the queue is full. Returns false (item not enqueued) if
  /// the queue is or becomes closed.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push: never waits for space. A full queue yields kFull
  /// immediately — the load-shedding path of the access server (fast reject
  /// instead of queueing into a deadline violation). `item` is consumed only
  /// on kOk; on kFull/kClosed it is left intact so the caller can still use
  /// it (e.g. to invoke its completion callback with a typed rejection).
  PushResult try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return PushResult::kClosed;
      if (items_.size() >= capacity_) return PushResult::kFull;
      items_.push_back(std::move(item));
    }
    not_empty_.notify_one();
    return PushResult::kOk;
  }

  /// Blocks while the queue is empty and open. Returns nullopt only when the
  /// queue is closed *and* fully drained — consumers never miss items.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Timed consumer wait: blocks up to `timeout_s` while the queue is empty
  /// and open, then gives up. Returns an item whenever one is available —
  /// including from a queue that is closed but not yet drained, so shutdown
  /// never loses work. Returns nullopt on timeout *or* on closed-and-drained;
  /// callers distinguish the two with closed() (a gateway retry loop or a
  /// draining node polls its deadline between slices instead of parking
  /// forever in pop()).
  ///
  /// Lost-wakeup audit (the invariant MicroBatcher's timed wait relies on
  /// too). A timed waiter racing close() cannot miss the wakeup: close()
  /// sets closed_ *under the mutex* before notifying, and wait_for uses the
  /// predicate overload, which re-checks `closed_ || !items_.empty()` under
  /// that same mutex both before first blocking and after every wake
  /// (including spurious ones and timeout). So either the waiter blocks
  /// before close() takes the mutex — and the notify_all finds it — or it
  /// re-evaluates the predicate after close() released the mutex and sees
  /// closed_ == true. The only nullopt paths are a genuine timeout with the
  /// queue still empty, or closed-and-drained; an enqueued item can never be
  /// stranded. Pinned by BoundedQueue.CloseRacesTimedPopWithoutLosingItems.
  std::optional<T> try_pop_for(double timeout_s) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait_for(lock, std::chrono::duration<double>(timeout_s < 0.0 ? 0.0 : timeout_s),
                        [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return item;
  }

  /// Idempotent. After close(): push() fails fast, pop() drains then ends.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  std::size_t capacity() const { return capacity_; }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace wavekey::runtime
