#include "runtime/event_loop.hpp"

#include <array>
#include <chrono>
#include <cmath>
#include <exception>

namespace wavekey::runtime {

// ---------------------------------------------------------------------------
// Hierarchical timer wheel.
//
// 4 levels x 64 slots at 100 us/tick. An entry is filed into the level whose
// span covers its remaining delta (L0: <6.4 ms, L1: <409.6 ms, L2: <26.2 s,
// L3: everything else) at the slot addressed by the matching 6-bit field of
// its absolute deadline tick. When a level-k index wraps, the slot at the new
// level-(k+1) index is cascaded: its entries are re-placed by their fresh
// delta, drifting down one level per wrap until they expire out of L0.
// Insert and expire are O(1) amortized; a cascade touches only one slot.
// ---------------------------------------------------------------------------

struct EventLoop::TimerWheel {
  static constexpr int kLevels = 4;
  static constexpr int kLevelBits = 6;
  static constexpr std::uint64_t kSlots = 1ull << kLevelBits;  // 64
  static constexpr std::uint64_t kTickNs = 100'000;            // 100 us
  using Clock = std::chrono::steady_clock;

  struct Entry {
    std::coroutine_handle<> handle;
    std::uint64_t deadline_tick;
  };

  Clock::time_point epoch = Clock::now();
  std::uint64_t current_tick = 0;  ///< last tick fully processed
  std::uint64_t pending = 0;       ///< entries currently in the wheel
  std::array<std::array<std::vector<Entry>, kSlots>, kLevels> slots;

  std::uint64_t tick_of(Clock::time_point t) const {
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(t - epoch).count();
    return ns <= 0 ? 0 : static_cast<std::uint64_t>(ns) / kTickNs;
  }

  Clock::time_point time_of(std::uint64_t tick) const {
    return epoch + std::chrono::nanoseconds(tick * kTickNs);
  }

  /// Files an entry by its delta from current_tick; already-due entries go
  /// straight to `expired` (pending is decremented for those — callers
  /// increment pending only for entries that actually land in a slot).
  void place(Entry entry, std::vector<std::coroutine_handle<>>& expired) {
    if (entry.deadline_tick <= current_tick) {
      expired.push_back(entry.handle);
      return;
    }
    const std::uint64_t delta = entry.deadline_tick - current_tick;
    int level = kLevels - 1;
    for (int l = 0; l < kLevels; ++l) {
      if (delta < (1ull << (kLevelBits * (l + 1)))) {
        level = l;
        break;
      }
    }
    const std::uint64_t idx = (entry.deadline_tick >> (kLevelBits * level)) & (kSlots - 1);
    slots[static_cast<std::size_t>(level)][idx].push_back(entry);
  }

  /// Advances tick-by-tick to `target`, cascading wrapped levels and
  /// collecting expired handles. Cheap even after long idle stretches: an
  /// empty tick is one index increment and an empty-vector check.
  void advance_to(std::uint64_t target, std::vector<std::coroutine_handle<>>& expired) {
    while (current_tick < target) {
      ++current_tick;
      const std::uint64_t t = current_tick;
      // Cascade every level whose index wrapped at this tick, top-down so
      // re-placed entries land in already-processed (or lower) positions.
      int wrapped = 0;
      for (int l = 1; l < kLevels; ++l) {
        if ((t & ((1ull << (kLevelBits * l)) - 1)) != 0) break;
        wrapped = l;
      }
      for (int l = wrapped; l >= 1; --l) {
        const std::uint64_t idx = (t >> (kLevelBits * l)) & (kSlots - 1);
        auto moved = std::move(slots[static_cast<std::size_t>(l)][idx]);
        slots[static_cast<std::size_t>(l)][idx].clear();
        for (auto& e : moved) place(e, expired);
      }
      auto& due = slots[0][t & (kSlots - 1)];
      for (auto& e : due) expired.push_back(e.handle);  // L0 slots expire whole
      due.clear();
    }
    pending -= expired.size();
  }

  /// Pre: pending > 0. Next tick worth waking for: the first non-empty L0
  /// slot before the next cascade boundary, else the boundary itself (so a
  /// timer parked in a higher level is never slept past by more than one
  /// L0 wrap, 6.4 ms).
  std::uint64_t next_wake_tick() const {
    const std::uint64_t boundary = (current_tick | (kSlots - 1)) + 1;
    for (std::uint64_t k = current_tick + 1; k < boundary; ++k) {
      if (!slots[0][k & (kSlots - 1)].empty()) return k;
    }
    return boundary;
  }
};

// ---------------------------------------------------------------------------
// Detached runner: the coroutine EventLoop::spawn wraps around a Task<void>.
// Its frame owns the task (and therefore the task's frame); the final awaiter
// destroys the runner frame first and only then reports completion, so
// drain() returning implies every frame is already freed.
// ---------------------------------------------------------------------------

namespace {

struct Detached {
  struct promise_type {
    EventLoop* loop = nullptr;

    Detached get_return_object() {
      return Detached{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    struct FinalAwaiter {
      bool await_ready() const noexcept { return false; }
      void await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        EventLoop* loop = h.promise().loop;
        h.destroy();  // frees runner frame + owned task frame; h is dead now
        detail_finished(loop);
      }
      void await_resume() const noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() {}
    // Detached: no awaiter to rethrow into. A task that lets an exception
    // escape is a bug in the task, and hiding it would corrupt the ledger
    // invariants the server layers rely on.
    void unhandled_exception() { std::terminate(); }

    static void detail_finished(EventLoop* loop);
  };

  std::coroutine_handle<promise_type> handle;
};

Detached run_detached(Task<void> task) { co_await std::move(task); }

}  // namespace

// Grants the runner access to the private completion hook.
struct detail_spawn_access {
  static void finished(EventLoop* loop) { loop->task_finished(); }
};

namespace {
void Detached::promise_type::detail_finished(EventLoop* loop) {
  detail_spawn_access::finished(loop);
}
}  // namespace

// ---------------------------------------------------------------------------
// EventLoop
// ---------------------------------------------------------------------------

EventLoop::EventLoop(std::size_t threads) : wheel_(new TimerWheel) {
  const std::size_t n = threads ? threads : 1;
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_main(); });
  }
  timer_thread_ = std::thread([this] { timer_main(); });
}

EventLoop::~EventLoop() {
  close();
  drain();
  {
    std::lock_guard<std::mutex> lock(timer_mutex_);
    timer_stop_ = true;
  }
  timer_cv_.notify_all();
  timer_thread_.join();
  {
    std::lock_guard<std::mutex> lock(ready_mutex_);
    stopping_ = true;
  }
  ready_cv_.notify_all();
  for (auto& w : workers_) w.join();
  delete wheel_;
}

bool EventLoop::spawn(Task<void> task) {
  if (!task.valid()) return false;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    if (closed_) return false;  // task destroyed unstarted on return
    ++spawned_;
  }
  Detached runner = run_detached(std::move(task));
  runner.handle.promise().loop = this;
  post(runner.handle);
  return true;
}

void EventLoop::post(std::coroutine_handle<> h) {
  posts_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(ready_mutex_);
    ready_.push_back(h);
  }
  ready_cv_.notify_one();
}

void EventLoop::close() {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  closed_ = true;
}

bool EventLoop::closed() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return closed_;
}

void EventLoop::drain() {
  std::unique_lock<std::mutex> lock(stats_mutex_);
  drained_cv_.wait(lock, [&] { return spawned_ == completed_; });
}

EventLoopStats EventLoop::stats() const {
  EventLoopStats out;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    out.spawned = spawned_;
    out.completed = completed_;
    out.active = spawned_ - completed_;
  }
  out.posts = posts_.load(std::memory_order_relaxed);
  out.timers_scheduled = timers_scheduled_.load(std::memory_order_relaxed);
  out.timers_fired = timers_fired_.load(std::memory_order_relaxed);
  return out;
}

void EventLoop::task_finished() {
  bool drained = false;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++completed_;
    drained = (completed_ == spawned_);
  }
  if (drained) drained_cv_.notify_all();
}

void EventLoop::schedule_timer(std::coroutine_handle<> h, double seconds) {
  timers_scheduled_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(timer_mutex_);
    const auto now = TimerWheel::Clock::now();
    const auto delay_ticks = static_cast<std::uint64_t>(
        std::ceil(seconds * 1e9 / static_cast<double>(TimerWheel::kTickNs)));
    const std::uint64_t deadline =
        wheel_->tick_of(now) + (delay_ticks ? delay_ticks : 1);
    // place() cannot expire this entry inline: deadline > current_tick by
    // construction (tick_of(now) >= current_tick and delay >= 1 tick).
    std::vector<std::coroutine_handle<>> none;
    wheel_->place(TimerWheel::Entry{h, deadline}, none);
    ++wheel_->pending;
  }
  // Wake the timer thread: the new deadline may be sooner than its current
  // sleep target.
  timer_cv_.notify_one();
}

void EventLoop::worker_main() {
  for (;;) {
    std::coroutine_handle<> h;
    {
      std::unique_lock<std::mutex> lock(ready_mutex_);
      ready_cv_.wait(lock, [&] { return stopping_ || !ready_.empty(); });
      if (ready_.empty()) return;  // stopping and fully drained
      h = ready_.front();
      ready_.pop_front();
    }
    h.resume();
  }
}

void EventLoop::timer_main() {
  std::vector<std::coroutine_handle<>> expired;
  std::unique_lock<std::mutex> lock(timer_mutex_);
  while (!timer_stop_) {
    expired.clear();
    wheel_->advance_to(wheel_->tick_of(TimerWheel::Clock::now()), expired);
    if (!expired.empty()) {
      lock.unlock();
      timers_fired_.fetch_add(expired.size(), std::memory_order_relaxed);
      for (auto h : expired) post(h);
      lock.lock();
      continue;  // re-check: more may have become due while posting
    }
    if (wheel_->pending == 0) {
      timer_cv_.wait(lock);  // indefinite — no polling when idle
    } else {
      timer_cv_.wait_until(lock, wheel_->time_of(wheel_->next_wake_tick()));
    }
  }
}

}  // namespace wavekey::runtime
