#include "runtime/buffer_pool.hpp"

#include <cstdlib>
#include <utility>

namespace wavekey::runtime {

PooledBuffer::PooledBuffer(PooledBuffer&& other) noexcept
    : pool_(std::exchange(other.pool_, nullptr)), buf_(std::move(other.buf_)) {}

PooledBuffer& PooledBuffer::operator=(PooledBuffer&& other) noexcept {
  if (this != &other) {
    if (pool_ != nullptr) pool_->give_back(std::move(buf_));
    pool_ = std::exchange(other.pool_, nullptr);
    buf_ = std::move(other.buf_);
  }
  return *this;
}

PooledBuffer::~PooledBuffer() {
  if (pool_ != nullptr) pool_->give_back(std::move(buf_));
  pool_ = nullptr;
}

void PooledBuffer::release() {
  // Double return is aliasing waiting to happen (two leases sharing one
  // vector on the wire path) — fail loudly rather than corrupt frames.
  if (pool_ == nullptr) std::abort();
  pool_->give_back(std::move(buf_));
  pool_ = nullptr;
}

BufferPool::BufferPool(std::size_t reserve_bytes) : reserve_bytes_(reserve_bytes) {}

PooledBuffer BufferPool::lease() {
  std::vector<std::uint8_t> buf;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.leases;
    ++stats_.in_use;
    if (stats_.in_use > stats_.peak_in_use) stats_.peak_in_use = stats_.in_use;
    if (!free_.empty()) {
      buf = std::move(free_.back());
      free_.pop_back();
      buf.clear();  // keeps capacity
      return PooledBuffer(this, std::move(buf));
    }
    ++stats_.allocations;
  }
  buf.reserve(reserve_bytes_);  // allocate outside the lock
  return PooledBuffer(this, std::move(buf));
}

void BufferPool::give_back(std::vector<std::uint8_t> buf) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.returns;
  --stats_.in_use;
  free_.push_back(std::move(buf));
}

BufferPoolStats BufferPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace wavekey::runtime
