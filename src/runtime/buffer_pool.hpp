#pragma once

// Recycling byte-buffer pool for the zero-copy wire path.
//
// Framing a cluster envelope used to allocate a fresh std::vector per
// message (serialize -> frame -> transmit -> free). BufferPool keeps
// returned vectors — with their grown capacity — on a freelist, so after
// warm-up every lease is a pop + size reset and the steady-state wire path
// performs zero heap allocations per request. Same discipline as the
// TensorArena in the NN layers (DESIGN.md §6): counters expose allocations
// vs leases so tests and CI can assert the steady state exactly.
//
// Ownership: lease() returns a move-only RAII PooledBuffer; destruction (or
// explicit release()) returns the storage to the pool. Releasing the same
// buffer twice is a contract violation and aborts — a double return would
// let two leases alias one vector, which on the wire path means one
// request's frame overwriting another's.
//
// Thread-safety: BufferPool is fully synchronized (one mutex; lease/return
// are O(1) pointer moves). A PooledBuffer itself is confined to one
// coroutine/thread at a time, like any other value.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace wavekey::runtime {

class BufferPool;

/// Move-only lease of a pooled byte vector. Empty (sized 0) on lease, with
/// whatever capacity its previous life grew; returned to the pool on
/// destruction.
class PooledBuffer {
 public:
  PooledBuffer() noexcept = default;
  PooledBuffer(PooledBuffer&& other) noexcept;
  PooledBuffer& operator=(PooledBuffer&& other) noexcept;
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;
  ~PooledBuffer();

  /// The leased storage. Callers may resize/swap it freely; whatever vector
  /// is here when the lease ends is what returns to the pool (so a
  /// swapped-in vector donates its capacity — used by the gateway to round-
  /// trip frames through FaultyChannel without copying).
  std::vector<std::uint8_t>& bytes() noexcept { return buf_; }
  const std::vector<std::uint8_t>& bytes() const noexcept { return buf_; }

  bool valid() const noexcept { return pool_ != nullptr; }

  /// Returns the storage to the pool now. Calling release() on an already
  /// released (or default-constructed) buffer aborts.
  void release();

 private:
  friend class BufferPool;
  PooledBuffer(BufferPool* pool, std::vector<std::uint8_t> buf) noexcept
      : pool_(pool), buf_(std::move(buf)) {}

  BufferPool* pool_ = nullptr;
  std::vector<std::uint8_t> buf_;
};

/// Counters mirrored under the pool lock; `in_use == leases - returns` and
/// steady state means `allocations` stops growing while `leases` does not.
struct BufferPoolStats {
  std::uint64_t leases = 0;       ///< lease() calls
  std::uint64_t returns = 0;      ///< buffers returned (release or dtor)
  std::uint64_t allocations = 0;  ///< leases served by a fresh vector (freelist empty)
  std::uint64_t in_use = 0;       ///< currently leased
  std::uint64_t peak_in_use = 0;  ///< high-water mark of in_use
};

class BufferPool {
 public:
  /// `reserve_bytes` is the capacity given to freshly allocated buffers so
  /// typical frames never reallocate even on their first lease.
  explicit BufferPool(std::size_t reserve_bytes = 512);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  PooledBuffer lease();
  BufferPoolStats stats() const;

 private:
  friend class PooledBuffer;
  void give_back(std::vector<std::uint8_t> buf);

  const std::size_t reserve_bytes_;
  mutable std::mutex mutex_;
  std::vector<std::vector<std::uint8_t>> free_;
  BufferPoolStats stats_;
};

}  // namespace wavekey::runtime
