// Reproduces SVI-E (security evaluation): device spoofing via random
// guessing (Eq. (4) + empirical), gesture mimicking (paper: 600 instances,
// all failed), camera-aided data recovery (remote: 1/200 within-tolerance
// seeds but never within the deadline; in-situ: 0/200), plus the SV attacks
// the paper analyzes: RFID signal spoofing and protocol MitM tampering.

#include "attacks/attack_eval.hpp"
#include "bench/common.hpp"
#include "crypto/drbg.hpp"
#include "numeric/stats.hpp"

using namespace wavekey;

int main() {
  bench::print_header("Security evaluation -- device spoofing and protocol attacks",
                      "WaveKey (ICDCS'24) SV + SVI-E");

  core::WaveKeySystem& system = bench::system();
  core::EncoderPair& encoders = system.encoders();
  const core::SeedQuantizer& quantizer = system.quantizer();
  const core::WaveKeyConfig& cfg = system.config();

  // --- random guessing (SV-B1) ---
  {
    const double analytic = core::random_guess_success_rate(cfg.seed_bits(), cfg.eta);
    crypto::Drbg rng(77);
    const int guesses = bench::scaled(200000);
    int hits = 0;
    const auto victim = core::simulate_seed_pair(encoders, quantizer, cfg,
                                                 bench::default_scenario(0), 42);
    if (victim) {
      for (int i = 0; i < guesses; ++i)
        if (attacks::run_random_guess_attack(victim->mobile_seed, cfg.eta, rng).success())
          ++hits;
    }
    std::printf("\nrandom guessing:  P_g analytic (Eq. 4) = %.3e\n", analytic);
    std::printf("                  empirical             = %.3e  (%d / %d guesses)\n",
                victim ? static_cast<double>(hits) / guesses : -1.0, hits, guesses);
    std::printf("                  paper quotes ~0.04%% at its (l_s, eta)\n");
  }

  // --- gesture mimicking (SVI-E1) ---
  {
    const int n = bench::scaled(150);
    int ran = 0, success = 0;
    std::vector<double> mismatches;
    for (int i = 0; i < n; ++i) {
      const auto r = attacks::run_mimic_attack(encoders, quantizer, cfg,
                                               bench::default_scenario(i),
                                               attacks::MimicSkill::average(),
                                               5000 + static_cast<std::uint64_t>(i) * 613);
      if (!r) continue;
      ++ran;
      mismatches.push_back(r->mismatch);
      if (r->success()) ++success;
    }
    std::printf("\ngesture mimicking: %d instances, %d succeeded (%.2f%%)\n", ran, success,
                ran ? 100.0 * success / ran : 0.0);
    if (!mismatches.empty())
      std::printf("                   attacker-seed mismatch: mean %.3f, min %.3f (eta=%.3f)\n",
                  mean(mismatches), percentile(mismatches, 0), cfg.eta);
    std::printf("                   paper: 0 / 600 instances succeeded\n");
  }

  // --- camera-aided recovery (SVI-E2) ---
  for (const bool remote : {true, false}) {
    const int n = bench::scaled(100);
    int ran = 0, seed_ok = 0, full_success = 0;
    for (int i = 0; i < n; ++i) {
      const auto r = attacks::run_camera_spoof(
          encoders, quantizer, cfg, bench::default_scenario(i),
          remote ? sim::CameraConfig::remote() : sim::CameraConfig::in_situ(),
          7000 + static_cast<std::uint64_t>(i) * 419);
      if (!r) continue;
      ++ran;
      if (r->seed_accepted) ++seed_ok;
      if (r->success()) ++full_success;
    }
    std::printf("\ncamera %-8s:  %d instances; valid seed %d (%.1f%%); within deadline+seed %d\n",
                remote ? "remote" : "in-situ", ran, seed_ok, ran ? 100.0 * seed_ok / ran : 0.0,
                full_success);
    if (remote)
      std::printf("                   paper: 1 / 200 valid seeds (0.5%%), none within deadline\n");
    else
      std::printf("                   paper: 0 / 200 valid seeds\n");
  }

  // --- RFID signal spoofing (SV-A) ---
  {
    const int n = bench::scaled(40);
    int ran = 0, below_eta = 0;
    std::vector<double> mismatches;
    for (int i = 0; i < n; ++i) {
      const auto m = attacks::run_signal_spoof(encoders, quantizer, cfg,
                                               bench::default_scenario(i),
                                               8000 + static_cast<std::uint64_t>(i) * 83);
      if (!m) continue;
      ++ran;
      mismatches.push_back(*m);
      if (*m <= cfg.eta) ++below_eta;
    }
    std::printf("\nsignal spoofing:  %d instances; seed mismatch mean %.3f; sessions surviving "
                "reconciliation: %d\n",
                ran, mismatches.empty() ? 0.0 : mean(mismatches), below_eta);
    std::printf("                   paper: spoofing breaks the cross-modal correlation ->\n");
    std::printf("                   key establishment fails and the attack is detectable\n");
  }

  // --- protocol MitM tampering + eavesdropping (SV-C) ---
  {
    const int n = bench::scaled(30);
    int tamper_success = 0, sessions = 0;
    for (int i = 0; i < n; ++i) {
      const auto tamper = attacks::make_tamperer(protocol::MessageType::kMsgB,
                                                 static_cast<std::size_t>(i) * 101);
      const auto out = system.establish_key(bench::default_scenario(i),
                                            9000 + static_cast<std::uint64_t>(i) * 59, tamper);
      if (!out.pipelines_ok) continue;
      ++sessions;
      if (out.success) ++tamper_success;
    }
    std::printf("\nMitM tampering:   %d sessions with one flipped M_B bit; %d established a key\n",
                sessions, tamper_success);
    std::printf("                   (tampered OT instances corrupt one pad; reconciliation\n");
    std::printf("                   absorbs at most the eta budget, exactly as designed)\n");

    protocol::Bytes transcript;
    auto eave = attacks::make_eavesdropper(&transcript);
    const auto out = system.establish_key(bench::default_scenario(0), 4242, eave);
    std::printf("\neavesdropping:    transcript %zu bytes captured; key established: %s;\n",
                transcript.size(), out.success ? "yes" : "no");
    std::printf("                   OT security: transcript reveals neither pad stream\n");
  }
  return 0;
}
