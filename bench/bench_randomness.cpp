// Reproduces SVI-D: NIST randomness evaluation of the established keys and
// key-seeds. Each simulated volunteer performs many key establishments in a
// static environment; per volunteer the 256-bit keys concatenate into a
// key-chain and the seed pairs into two key-seed-chains, which then face
// the NIST battery (the paper reports the runs test; we run the companions
// too).

#include "bench/common.hpp"
#include "nist/nist.hpp"
#include "numeric/stats.hpp"

using namespace wavekey;

int main() {
  bench::print_header("Randomness of keys and key-seeds (NIST SP 800-22)",
                      "WaveKey (ICDCS'24) SVI-D");

  const int keys_per_volunteer = bench::scaled(60);
  core::WaveKeySystem& system = bench::system();
  std::printf("%d keys per volunteer, static environment\n\n", keys_per_volunteer);

  std::vector<double> key_runs_p, seed_runs_p;
  std::printf("volunteer | chain bits | monobit |  runs  | blockfreq | cusum | longest\n");
  std::printf("----------+------------+---------+--------+-----------+-------+--------\n");
  for (std::size_t v = 0; v < bench::cohort().size(); ++v) {
    BitVec key_chain, seed_chain_m, seed_chain_r;
    for (int i = 0; i < keys_per_volunteer; ++i) {
      sim::ScenarioConfig sc = bench::default_scenario(static_cast<int>(v));
      sc.volunteer = bench::cohort()[v];
      const std::uint64_t seed = (v + 1) * 100000ull + static_cast<std::uint64_t>(i) * 271ull;
      const core::WaveKeyOutcome out = system.establish_key(sc, seed);
      if (!out.success) continue;
      key_chain.append(out.key);
    }
    // Key-seed chains (paper: the seeds are security-critical too).
    for (int i = 0; i < keys_per_volunteer; ++i) {
      sim::ScenarioConfig sc = bench::default_scenario(static_cast<int>(v));
      sc.volunteer = bench::cohort()[v];
      const std::uint64_t seed = (v + 1) * 100000ull + static_cast<std::uint64_t>(i) * 271ull;
      const auto pair = core::simulate_seed_pair(system.encoders(), system.quantizer(),
                                                 system.config(), sc, seed);
      if (!pair) continue;
      seed_chain_m.append(pair->mobile_seed);
      seed_chain_r.append(pair->server_seed);
    }
    if (key_chain.size() < 256 || seed_chain_m.size() < 256) {
      std::printf("  vol %zu  | insufficient successful sessions\n", v + 1);
      continue;
    }

    const double p_runs = nist::runs_test(key_chain);
    key_runs_p.push_back(p_runs);
    seed_runs_p.push_back(nist::runs_test(seed_chain_m));
    seed_runs_p.push_back(nist::runs_test(seed_chain_r));
    std::printf("  keys %zu  | %10zu |  %.3f  | %.3f  |   %.3f   | %.3f |  %.3f\n", v + 1,
                key_chain.size(), nist::monobit_test(key_chain), p_runs,
                nist::block_frequency_test(key_chain), nist::cusum_test(key_chain),
                nist::longest_run_test(key_chain));
    std::printf("  seeds%zu  | %10zu |  %.3f  | %.3f  |     --    |  --   |   --\n", v + 1,
                seed_chain_m.size(), nist::monobit_test(seed_chain_m),
                nist::runs_test(seed_chain_m));
  }

  if (!key_runs_p.empty()) {
    std::printf("\nruns-test p-values, key chains:      avg %.3f  min %.3f\n", mean(key_runs_p),
                percentile(key_runs_p, 0));
    std::printf("runs-test p-values, key-seed chains: avg %.3f  min %.3f\n", mean(seed_runs_p),
                percentile(seed_runs_p, 0));
    std::printf("paper: key chains avg 0.92 / min 0.90; seed chains avg 0.78 / min 0.72\n");
    std::printf("pass threshold: p >= 0.05 (paper) / 0.01 (NIST default)\n");
    std::printf("\nNote on seed chains: with N_b = 9 bins Gray-coded into 4 bits, the 4th\n");
    std::printf("bit of each element is 1 only for the 9th bin (P = 1/9), so raw seed\n");
    std::printf("chains are biased *by construction* and fail frequency-family tests.\n");
    std::printf("The effective per-seed entropy is l_f * log2(N_b) = 12 * 3.17 = 38.0\n");
    std::printf("bits -- exactly the paper's l_s = 38 from its fractional Eq. (2). The\n");
    std::printf("established keys are unaffected (they are OT-pad randomness).\n");
  }
  return 0;
}
