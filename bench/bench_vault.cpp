// Million-session vault data-plane bench (DESIGN.md §13): authorize
// throughput, memory footprint, TTL purge rate, and lock-hold percentiles
// of server::KeyVault across a sessions scale sweep, against a baseline arm
// that faithfully re-states the pre-rebuild data plane — one mutex +
// std::unordered_map + std::list LRU per shard, modulo shard routing, and
// the HMAC computed UNDER the shard lock with the portable SHA-256 kernel
// (the pipeline exactly as it stood before the FlatMap/optimistic/SHA-NI
// change, re-stated locally below so the comparison survives future edits
// to the production code).
//
// Per sessions point:
//   fill        — install every session in both arms (install rate, bytes
//                 per session: measured for the production arm, a
//                 sizeof-based estimate for the node-based baseline);
//   authorize   — 1- and 4-thread throughput over pre-MACed request batches
//                 (disjoint session stripes per thread; requests are built
//                 OUTSIDE the timed region so the measurement is pure vault
//                 work, not client-side MAC generation);
//   ledger      — closed-form rejection counts on the production arm:
//                 byte-exact replays of granted requests, corrupted MACs,
//                 stale epochs after rotation, unknown ids, expired
//                 sessions — every class must land exactly, and the replay
//                 probes must yield zero accepted replays (double grants);
//   purge       — a short-TTL vault is filled and swept past expiry; the
//                 wheel must reclaim every session (purge rate reported);
//   lock hold   — largest point only: p50/p99 shard-lock hold times with
//                 measure_lock_hold, optimistic vs classic verify, proving
//                 the HMAC left the critical section.
//
// Exit code: nonzero on any ledger mismatch, accepted replay, double
// grant, purge shortfall, or authorize failure. The >=2x speedup gate
// lives in tools/ci.sh (vault_gate), which re-derives it from the JSON.
//
// Knobs: WAVEKEY_BENCH_SCALE scales the largest sessions point (1e6 at
// 1.0) and the op counts; WAVEKEY_SIMD=scalar pins the production arm's
// kernels for A/B runs.

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "crypto/hmac.hpp"
#include "runtime/cpu.hpp"
#include "server/access_protocol.hpp"
#include "server/key_vault.hpp"
#include "server/replay_window.hpp"

using namespace wavekey;
using namespace wavekey::server;

namespace {

using Clock = std::chrono::steady_clock;

double bench_scale() {
  if (const char* env = std::getenv("WAVEKEY_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 1.0;
}

std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Deterministic per-session key — both arms and the request builder agree
/// without storing a million keys.
SessionKey key_of(std::uint64_t id) {
  SessionKey key{};
  for (std::size_t w = 0; w < 4; ++w) {
    const std::uint64_t v = mix64(id * 4 + w + 0x5EED);
    std::memcpy(key.data() + w * 8, &v, 8);
  }
  return key;
}

std::array<std::uint8_t, kNonceBytes> nonce_from(std::uint64_t v) {
  std::array<std::uint8_t, kNonceBytes> nonce{};
  for (std::size_t i = 0; i < nonce.size(); ++i)
    nonce[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return nonce;
}

// --- baseline arm: the pre-rebuild data plane, re-stated -------------------

struct BaselineVault {
  struct Entry {
    SessionKey key{};
    std::uint32_t epoch = 0;
    double expires_at_s = 0.0;
    bool revoked = false;
    ReplayWindow window;
    std::list<std::uint64_t>::iterator lru_pos;
    explicit Entry(std::size_t bits) : window(bits) {}
  };
  struct Shard {
    std::mutex mutex;
    std::unordered_map<std::uint64_t, Entry> entries;
    std::list<std::uint64_t> lru;  // front = most recent
  };

  std::size_t per_shard_capacity;
  double ttl_s;
  std::size_t window_bits;
  std::vector<std::unique_ptr<Shard>> shards;

  BaselineVault(std::size_t nshards, std::size_t capacity, double ttl, std::size_t bits)
      : per_shard_capacity((capacity + nshards - 1) / nshards), ttl_s(ttl), window_bits(bits) {
    shards.reserve(nshards);
    for (std::size_t i = 0; i < nshards; ++i) shards.push_back(std::make_unique<Shard>());
  }

  Shard& shard_for(std::uint64_t id) { return *shards[mix64(id) % shards.size()]; }

  bool install(std::uint64_t id, const SessionKey& key, double now_s) {
    Shard& shard = shard_for(id);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(id);
    if (it == shard.entries.end()) {
      if (shard.entries.size() >= per_shard_capacity && !shard.lru.empty()) {
        shard.entries.erase(shard.lru.back());
        shard.lru.pop_back();
      }
      it = shard.entries.emplace(id, Entry(window_bits)).first;
      shard.lru.push_front(id);
      it->second.lru_pos = shard.lru.begin();
    } else {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
    }
    Entry& e = it->second;
    e.key = key;
    e.epoch = 0;
    e.expires_at_s = now_s + ttl_s;
    e.revoked = false;
    e.window.reset();
    return true;
  }

  AccessStatus authorize(const AccessRequest& req, std::span<const std::uint8_t> mac_input,
                         double now_s) {
    Shard& shard = shard_for(req.session_id);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.entries.find(req.session_id);
    if (it == shard.entries.end()) return AccessStatus::kUnknownSession;
    Entry& e = it->second;
    if (now_s >= e.expires_at_s) {
      shard.lru.erase(e.lru_pos);
      shard.entries.erase(it);
      return AccessStatus::kExpired;
    }
    if (e.revoked) return AccessStatus::kRevoked;
    if (req.epoch != e.epoch) return AccessStatus::kStaleEpoch;
    // The seed computed the MAC inside this critical section, with the
    // portable (pre-SHA-NI) kernel.
    const crypto::Digest256 expected = crypto::hmac_sha256_portable(e.key, mac_input);
    crypto::Digest256 carried{};
    std::copy(req.mac.begin(), req.mac.end(), carried.begin());
    if (!crypto::digest_equal(expected, carried)) return AccessStatus::kBadMac;
    if (!e.window.check_and_update(req.counter)) return AccessStatus::kReplay;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_pos);
    return AccessStatus::kGranted;
  }

  /// Node-based containers hide their allocations; this sizeof-based
  /// estimate (map node: pair + hash + chain pointer; list node: value +
  /// two pointers; bucket array) is the honest lower bound we chart.
  std::size_t memory_bytes_estimate() const {
    std::size_t total = 0;
    for (const auto& shard : shards) {
      total += shard->entries.size() *
               (sizeof(std::pair<const std::uint64_t, Entry>) + 2 * sizeof(void*));
      total += shard->entries.bucket_count() * sizeof(void*);
      total += shard->lru.size() * (sizeof(std::uint64_t) + 2 * sizeof(void*));
    }
    return total;
  }
};

// --- pre-MACed request batches ---------------------------------------------

struct Probe {
  AccessRequest req;
  Bytes mac_input;
};

/// One disjoint session stripe per thread, each hit round-robin with
/// monotonically increasing counters — every probe is grantable exactly
/// once against freshly installed sessions.
std::vector<std::vector<Probe>> build_probes(std::size_t threads, std::size_t ops_per_thread,
                                             std::size_t touched) {
  std::vector<std::vector<Probe>> per_thread(threads);
  for (std::size_t t = 0; t < threads; ++t) {
    const std::uint64_t lo = t * touched / threads;
    const std::uint64_t hi = (t + 1) * touched / threads;
    const std::uint64_t span = std::max<std::uint64_t>(hi - lo, 1);
    auto& probes = per_thread[t];
    probes.reserve(ops_per_thread);
    for (std::size_t i = 0; i < ops_per_thread; ++i) {
      const std::uint64_t id = lo + (i % span);
      const std::uint64_t counter = 1 + i / span;
      AccessRequest req =
          make_access_request(id, 0, counter, nonce_from(counter), {0xAC}, key_of(id));
      Bytes mac_input = req.mac_input();
      probes.push_back(Probe{std::move(req), std::move(mac_input)});
    }
  }
  return per_thread;
}

/// Timed multi-thread authorize run; every probe must grant. Works for both
/// arms via the `authorize(probe)` callable.
template <typename Authorize>
double run_authorize(std::size_t threads, const std::vector<std::vector<Probe>>& per_thread,
                     Authorize&& authorize, std::uint64_t* failures_out) {
  std::atomic<std::size_t> ready{0};
  std::atomic<bool> go{false};
  std::atomic<std::uint64_t> failures{0};
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      ready.fetch_add(1);
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      std::uint64_t bad = 0;
      for (const Probe& p : per_thread[t])
        if (authorize(p) != AccessStatus::kGranted) ++bad;
      failures.fetch_add(bad);
    });
  }
  while (ready.load() < threads) std::this_thread::yield();
  const Clock::time_point t0 = Clock::now();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double wall = std::chrono::duration<double>(Clock::now() - t0).count();
  std::size_t total = 0;
  for (const auto& probes : per_thread) total += probes.size();
  *failures_out += failures.load();
  return static_cast<double>(total) / wall;
}

double percentile_ns(std::vector<std::uint64_t> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  std::size_t idx = static_cast<std::size_t>(p * static_cast<double>(samples.size()));
  if (idx >= samples.size()) idx = samples.size() - 1;
  return static_cast<double>(samples[idx]);
}

}  // namespace

int main() {
  const double scale = bench_scale();
  const std::size_t max_sessions =
      std::max<std::size_t>(1000, static_cast<std::size_t>(1e6 * scale));
  std::vector<std::size_t> points;
  for (std::size_t n : {std::size_t{1000}, std::size_t{10000}, std::size_t{100000},
                        std::size_t{1000000}})
    if (n < max_sessions) points.push_back(n);
  points.push_back(max_sessions);

  const std::size_t ops_per_thread = std::clamp<std::size_t>(
      static_cast<std::size_t>(20000 * scale), 2000, 200000);
  constexpr std::size_t kShards = 64;
  constexpr double kTtl = 300.0;
  constexpr std::size_t kWindowBits = 128;
  const std::vector<std::size_t> thread_counts = {1, 4};

  std::printf("{\n  \"bench\": \"vault\",\n  \"scale\": %.3f,\n  \"shards\": %zu,\n"
              "  \"ops_per_thread\": %zu,\n  \"hardware_threads\": %u,\n"
              "  \"sha_ni_active\": %s,\n  \"points\": [\n",
              scale, kShards, ops_per_thread, std::thread::hardware_concurrency(),
              runtime::cpu::sha_ni_active() ? "true" : "false");

  bool all_ok = true;
  bool first_point = true;
  for (const std::size_t sessions : points) {
    // Headroom so the fill never LRU-evicts: per-shard capacity must cover
    // the binomial tail of the hash distribution, which for small
    // sessions/shards ratios is far above 2x the mean — hence the flat
    // +128-per-shard slack on top of the 2x.
    const std::size_t capacity = sessions * 2 + 128 * kShards;
    VaultConfig vc;
    vc.shards = kShards;
    vc.capacity = capacity;
    vc.ttl_s = kTtl;
    vc.replay_window_bits = kWindowBits;
    KeyVault vault(vc);
    BaselineVault baseline(kShards, capacity, kTtl, kWindowBits);

    // Fill both arms (production arm timed for the install rate).
    const Clock::time_point fill0 = Clock::now();
    for (std::uint64_t id = 0; id < sessions; ++id) vault.install(id, key_of(id), 1.0);
    const double fill_wall = std::chrono::duration<double>(Clock::now() - fill0).count();
    for (std::uint64_t id = 0; id < sessions; ++id) baseline.install(id, key_of(id), 1.0);

    const double flatmap_bytes =
        static_cast<double>(vault.memory_bytes()) / static_cast<double>(sessions);
    const double baseline_bytes =
        static_cast<double>(baseline.memory_bytes_estimate()) / static_cast<double>(sessions);

    // Authorize throughput per thread count. Sessions are re-installed
    // before every run so each pre-built batch starts from fresh replay
    // windows (install resets epoch and window; counters restart at 1).
    const std::size_t max_threads =
        *std::max_element(thread_counts.begin(), thread_counts.end());
    const std::size_t touched = std::min(sessions, max_threads * ops_per_thread);
    std::uint64_t failures = 0;
    std::printf("%s    {\"sessions\": %zu, \"install_per_sec\": %.0f,\n"
                "     \"flatmap_bytes_per_session\": %.1f, "
                "\"baseline_bytes_per_session_est\": %.1f,\n     \"threads\": [\n",
                first_point ? "" : ",\n", sessions,
                static_cast<double>(sessions) / fill_wall, flatmap_bytes, baseline_bytes);
    first_point = false;

    bool first_tc = true;
    for (const std::size_t threads : thread_counts) {
      const auto probes = build_probes(threads, ops_per_thread, touched);
      for (std::uint64_t id = 0; id < touched; ++id) vault.install(id, key_of(id), 1.0);
      const double flat_rate = run_authorize(
          threads, probes,
          [&](const Probe& p) { return vault.authorize(p.req, p.mac_input, 1.0, nullptr); },
          &failures);
      for (std::uint64_t id = 0; id < touched; ++id) baseline.install(id, key_of(id), 1.0);
      const double base_rate = run_authorize(
          threads, probes,
          [&](const Probe& p) { return baseline.authorize(p.req, p.mac_input, 1.0); },
          &failures);
      std::printf("%s      {\"threads\": %zu, \"flatmap_grants_per_sec\": %.0f, "
                  "\"baseline_grants_per_sec\": %.0f, \"speedup\": %.2f}",
                  first_tc ? "" : ",\n", threads, flat_rate, base_rate,
                  flat_rate / base_rate);
      first_tc = false;
    }
    if (failures != 0) all_ok = false;

    // Closed-form rejection ledger on the production arm. Every class has
    // an exact expected count; anything else fails the bench.
    const std::size_t nprobe = std::min<std::size_t>(1000, touched / 2 + 1);
    std::uint64_t counts[kAccessStatusCount] = {};
    const auto probe = [&](const AccessRequest& req, double now) {
      const Bytes mac_input = req.mac_input();
      const AccessStatus st = vault.authorize(req, mac_input, now, nullptr);
      counts[static_cast<std::size_t>(st)] += 1;
    };
    // Byte-exact replays: re-install (fresh windows), grant each probe
    // once, then submit the identical bytes again — every resubmission must
    // come back kReplay, and a kGranted here is an accepted replay (double
    // grant), the one number that must be zero.
    for (std::uint64_t id = 0; id < touched; ++id) vault.install(id, key_of(id), 1.0);
    const auto replay_set = build_probes(1, nprobe, std::max<std::size_t>(touched / 2, 1));
    std::uint64_t first_pass_misses = 0;
    for (const Probe& p : replay_set[0])
      if (vault.authorize(p.req, p.mac_input, 1.0, nullptr) != AccessStatus::kGranted)
        ++first_pass_misses;
    std::uint64_t replay_double_grants = 0;
    for (const Probe& p : replay_set[0]) {
      const AccessStatus st = vault.authorize(p.req, p.mac_input, 1.0, nullptr);
      counts[static_cast<std::size_t>(st)] += 1;
      if (st == AccessStatus::kGranted) ++replay_double_grants;
    }
    // Corrupted MACs on fresh counters.
    for (std::size_t i = 0; i < nprobe; ++i) {
      const std::uint64_t id = i % std::max<std::size_t>(touched, 1);
      AccessRequest req = make_access_request(id, 0, 1000000 + i, nonce_from(i), {0xAC},
                                              key_of(id));
      req.mac[0] ^= 0x01;
      probe(req, 1.0);
    }
    // Stale epochs: rotate, then present epoch-0 requests.
    std::uint64_t rotated = 0;
    for (std::size_t i = 0; i < nprobe; ++i) {
      const std::uint64_t id = i % std::max<std::size_t>(touched, 1);
      if (rotated < nprobe && vault.rotate(id, 1.0).has_value()) ++rotated;
      probe(make_access_request(id, 0, 2000000 + i, nonce_from(i), {0xAC}, key_of(id)), 1.0);
    }
    // Unknown sessions: ids beyond every installed range.
    for (std::size_t i = 0; i < nprobe; ++i)
      probe(make_access_request(sessions + 1000000 + i, 0, 1, nonce_from(i), {0xAC},
                                key_of(sessions + 1000000 + i)),
            1.0);
    // Expired sessions: probe past the TTL horizon (status order puts the
    // TTL check before the MAC, so the key does not matter).
    for (std::size_t i = 0; i < nprobe; ++i) {
      const std::uint64_t id = i % std::max<std::size_t>(touched, 1);
      probe(make_access_request(id, 1, 3000000 + i, nonce_from(i), {0xAC}, key_of(id)),
            1.0 + kTtl + 1.0);
    }
    const std::uint64_t replay_rejected = counts[static_cast<std::size_t>(AccessStatus::kReplay)];
    const std::uint64_t bad_mac = counts[static_cast<std::size_t>(AccessStatus::kBadMac)];
    const std::uint64_t stale = counts[static_cast<std::size_t>(AccessStatus::kStaleEpoch)];
    const std::uint64_t unknown =
        counts[static_cast<std::size_t>(AccessStatus::kUnknownSession)];
    const std::uint64_t expired = counts[static_cast<std::size_t>(AccessStatus::kExpired)];
    const bool ledger_ok = replay_rejected == nprobe && replay_double_grants == 0 &&
                           first_pass_misses == 0 && bad_mac == nprobe && stale == nprobe &&
                           unknown == nprobe && expired == nprobe && failures == 0;
    if (!ledger_ok) all_ok = false;

    // TTL purge: a short-TTL vault swept past expiry must reclaim every
    // session through the wheel (none of them is ever touched again).
    VaultConfig pc = vc;
    pc.ttl_s = 1.0;
    const std::size_t purge_sessions = std::min<std::size_t>(sessions, 100000);
    pc.capacity = purge_sessions * 2 + 128 * kShards;
    KeyVault purge_vault(pc);
    for (std::uint64_t id = 0; id < purge_sessions; ++id)
      purge_vault.install(id, key_of(id), 0.0);
    const Clock::time_point purge0 = Clock::now();
    const std::size_t purged = purge_vault.purge_expired(2.0);
    const double purge_wall = std::chrono::duration<double>(Clock::now() - purge0).count();
    if (purged != purge_sessions) all_ok = false;

    std::printf("\n     ],\n     \"ledger\": {\"probes_per_class\": %zu, "
                "\"replay_rejected\": %llu, \"accepted_replays\": %llu, \"bad_mac\": %llu, "
                "\"stale_epoch\": %llu, \"unknown\": %llu, \"expired\": %llu, "
                "\"authorize_failures\": %llu, \"ledger_ok\": %s},\n"
                "     \"purge\": {\"installed\": %zu, \"purged\": %zu, "
                "\"purge_per_sec\": %.0f}}",
                nprobe, static_cast<unsigned long long>(replay_rejected),
                static_cast<unsigned long long>(replay_double_grants),
                static_cast<unsigned long long>(bad_mac),
                static_cast<unsigned long long>(stale),
                static_cast<unsigned long long>(unknown),
                static_cast<unsigned long long>(expired),
                static_cast<unsigned long long>(failures), ledger_ok ? "true" : "false",
                purge_sessions, purged,
                static_cast<double>(purged) / std::max(purge_wall, 1e-9));
  }

  // Lock-hold percentiles at the largest point: the optimistic path's two
  // short critical sections vs the classic single HMAC-bearing one, same
  // FlatMap store for both so the delta is purely the lock discipline.
  const std::size_t lh_sessions = points.back();
  const std::size_t lh_ops = std::min<std::size_t>(ops_per_thread, 20000);
  double opt_p50 = 0, opt_p99 = 0, cls_p50 = 0, cls_p99 = 0;
  for (const bool optimistic : {true, false}) {
    VaultConfig lc;
    lc.shards = kShards;
    lc.capacity = lh_sessions * 2 + 128 * kShards;
    lc.ttl_s = kTtl;
    lc.replay_window_bits = kWindowBits;
    lc.optimistic_verify = optimistic;
    lc.measure_lock_hold = true;
    KeyVault lv(lc);
    for (std::uint64_t id = 0; id < lh_sessions; ++id) lv.install(id, key_of(id), 1.0);
    const std::size_t touched = std::min(lh_sessions, lh_ops);
    const auto probes = build_probes(1, lh_ops, touched);
    // The fill above also ran under the shard locks; only the authorize
    // holds below should enter the percentiles.
    lv.reset_lock_hold_samples();
    std::uint64_t failures = 0;
    run_authorize(1, probes,
                  [&](const Probe& p) { return lv.authorize(p.req, p.mac_input, 1.0, nullptr); },
                  &failures);
    if (failures != 0) all_ok = false;
    const std::vector<std::uint64_t> samples = lv.lock_hold_samples_ns();
    if (optimistic) {
      opt_p50 = percentile_ns(samples, 0.50);
      opt_p99 = percentile_ns(samples, 0.99);
    } else {
      cls_p50 = percentile_ns(samples, 0.50);
      cls_p99 = percentile_ns(samples, 0.99);
    }
  }
  std::printf("\n  ],\n  \"lock_hold\": {\"sessions\": %zu, \"ops\": %zu, "
              "\"optimistic_p50_ns\": %.0f, \"optimistic_p99_ns\": %.0f, "
              "\"classic_p50_ns\": %.0f, \"classic_p99_ns\": %.0f, "
              "\"p99_ratio\": %.2f},\n",
              lh_sessions, lh_ops, opt_p50, opt_p99, cls_p50, cls_p99,
              cls_p99 / std::max(opt_p99, 1.0));

  std::printf("  \"all_ok\": %s\n}\n", all_ok ? "true" : "false");
  return all_ok ? 0 : 1;
}
