#pragma once

// Shared infrastructure for the table/figure benches: one trained WaveKey
// system cached on disk (first bench run trains it, the rest reuse it), the
// evaluation cohort, and scaling of instance counts via WAVEKEY_BENCH_SCALE
// (e.g. 0.25 for a quick smoke run, 4 for publication-grade statistics).

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/model_store.hpp"
#include "core/system.hpp"
#include "sim/scenario.hpp"

namespace wavekey::bench {

inline double scale() {
  if (const char* env = std::getenv("WAVEKEY_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 1.0;
}

/// Scales an instance count, keeping at least a handful of instances.
inline int scaled(int n) {
  const int s = static_cast<int>(static_cast<double>(n) * scale());
  return s < 4 ? 4 : s;
}

inline const char* model_path() { return "wavekey_models.bin"; }

/// The shared trained system (trains + caches on first use).
inline core::WaveKeySystem& system() {
  static core::WaveKeySystem sys = core::load_or_train(
      model_path(), core::default_dataset_config(), core::default_train_config(),
      core::WaveKeyConfig{});
  return sys;
}

/// The six simulated volunteers of the training campaign (the paper's
/// evaluation reuses its volunteers).
inline const std::vector<sim::VolunteerStyle>& cohort() {
  static const std::vector<sim::VolunteerStyle> styles = [] {
    const core::DatasetConfig dc = core::default_dataset_config();
    Rng rng(dc.seed);
    std::vector<sim::VolunteerStyle> out;
    for (std::size_t v = 0; v < dc.volunteers; ++v)
      out.push_back(sim::VolunteerStyle::sample(rng));
    return out;
  }();
  return styles;
}

/// Default evaluation scenario (paper SVI-B): Galaxy Watch, Alien 9640,
/// static lab, 5 m, 0 deg; gesture slightly longer than the 2 s window.
inline sim::ScenarioConfig default_scenario(int volunteer_index) {
  sim::ScenarioConfig sc;
  sc.volunteer = cohort()[static_cast<std::size_t>(volunteer_index) % cohort().size()];
  sc.gesture.active_s = 3.5;
  return sc;
}

/// Success-rate helper: runs `n` full key establishments of one scenario
/// configuration (seeding deterministically from `salt`), returns the
/// fraction that established a key. Pipeline rejections count as failures.
inline double key_establishment_rate(sim::ScenarioConfig base, int n, std::uint64_t salt) {
  int ok = 0;
  for (int i = 0; i < n; ++i) {
    sim::ScenarioConfig sc = base;
    sc.volunteer = cohort()[static_cast<std::size_t>(i) % cohort().size()];
    const core::WaveKeyOutcome out =
        system().establish_key(sc, salt * 1000003ull + static_cast<std::uint64_t>(i) * 7919ull);
    if (out.success) ++ok;
  }
  return 100.0 * static_cast<double>(ok) / static_cast<double>(n);
}

inline void print_header(const char* title, const char* paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("model: %s (eta=%.4f, l_s=%zu bits)\n", model_path(), system().config().eta,
              system().config().seed_bits());
  std::printf("================================================================\n");
}

}  // namespace wavekey::bench
