// Micro-benchmarks (google-benchmark) of the primitives underlying the
// headline numbers: hashing, the OT group arithmetic, Reed-Solomon,
// Savitzky-Golay, the NN inference, and one full protocol run. These back
// the tau/Table III measurements with per-primitive costs.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string_view>

#include "core/dataset.hpp"
#include "core/encoders.hpp"
#include "crypto/chacha20.hpp"
#include "crypto/drbg.hpp"
#include "crypto/field25519.hpp"
#include "crypto/sha256.hpp"
#include "dsp/savitzky_golay.hpp"
#include "ecc/gf256.hpp"
#include "ecc/reed_solomon.hpp"
#include "nn/batched_infer.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/gemm.hpp"
#include "protocol/session.hpp"
#include "runtime/buffer_pool.hpp"
#include "runtime/cpu.hpp"
#include "runtime/event_loop.hpp"
#include "runtime/flat_map.hpp"
#include "runtime/task.hpp"
#include "crypto/kdf_tree.hpp"
#include "server/access_protocol.hpp"
#include "server/audit.hpp"
#include "server/grants.hpp"
#include "server/key_vault.hpp"
#include "server/cluster.hpp"
#include "server/membership.hpp"
#include "sim/scenario.hpp"

using namespace wavekey;

namespace {

void BM_Sha256_1KiB(benchmark::State& state) {
  std::vector<std::uint8_t> data(1024, 0xAB);
  for (auto _ : state) benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_ChaChaDrbg_1KiB(benchmark::State& state) {
  crypto::Drbg drbg(1);
  std::vector<std::uint8_t> out(1024);
  for (auto _ : state) {
    drbg.random_bytes(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_ChaChaDrbg_1KiB);

void BM_Fe25519_Pow(benchmark::State& state) {
  crypto::Drbg drbg(2);
  auto e = drbg.random_scalar_bytes();
  e[31] &= 0x7F;
  const crypto::Fe25519 g = crypto::Fe25519::generator();
  for (auto _ : state) benchmark::DoNotOptimize(g.pow(e));
}
BENCHMARK(BM_Fe25519_Pow);

void BM_Fe25519_GeneratorPow(benchmark::State& state) {
  crypto::Drbg drbg(2);
  auto e = drbg.random_scalar_bytes();
  e[31] &= 0x7F;
  benchmark::DoNotOptimize(crypto::Fe25519::generator_pow(e));  // build the comb table
  for (auto _ : state) benchmark::DoNotOptimize(crypto::Fe25519::generator_pow(e));
}
BENCHMARK(BM_Fe25519_GeneratorPow);

void BM_Fe25519_Square(benchmark::State& state) {
  crypto::Drbg drbg(2);
  auto e = drbg.random_scalar_bytes();
  e[31] &= 0x7F;
  crypto::Fe25519 x = crypto::Fe25519::generator().pow(e);
  for (auto _ : state) {
    x = x.square();
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Fe25519_Square);

void BM_Fe25519_Inverse(benchmark::State& state) {
  crypto::Drbg drbg(2);
  auto e = drbg.random_scalar_bytes();
  e[31] &= 0x7F;
  const crypto::Fe25519 x = crypto::Fe25519::generator().pow(e);
  for (auto _ : state) benchmark::DoNotOptimize(x.inverse());
}
BENCHMARK(BM_Fe25519_Inverse);

void BM_OtInstance(benchmark::State& state) {
  crypto::Drbg rng(3);
  const std::vector<std::uint8_t> s0(8, 1), s1(8, 2);
  for (auto _ : state) {
    crypto::OtSender sender(rng);
    crypto::OtReceiver receiver(rng, true, sender.first_message());
    const auto cts = sender.encrypt(receiver.response(), s0, s1);
    benchmark::DoNotOptimize(receiver.decrypt(cts));
  }
}
BENCHMARK(BM_OtInstance);

void BM_OtSenderEncrypt(benchmark::State& state) {
  crypto::Drbg rng(3);
  const std::vector<std::uint8_t> s0(8, 1), s1(8, 2);
  const crypto::OtSender sender(rng);
  const crypto::OtReceiver receiver(rng, true, sender.first_message());
  for (auto _ : state)
    benchmark::DoNotOptimize(sender.encrypt(receiver.response(), s0, s1));
}
BENCHMARK(BM_OtSenderEncrypt);

void BM_ReedSolomon_Decode(benchmark::State& state) {
  const ecc::ReedSolomon rs(16);
  Rng rng(4);
  std::vector<std::uint8_t> data(100);
  for (auto& d : data) d = static_cast<std::uint8_t>(rng.uniform_u64(256));
  auto cw = rs.encode(data);
  for (int e = 0; e < 8; ++e) cw[e * 13] ^= 0x5A;
  for (auto _ : state) benchmark::DoNotOptimize(rs.decode(cw));
}
BENCHMARK(BM_ReedSolomon_Decode);

void BM_SavitzkyGolay_400(benchmark::State& state) {
  const dsp::SavitzkyGolayFilter sg(11, 3);
  Rng rng(5);
  std::vector<double> xs(400);
  for (auto& x : xs) x = rng.normal();
  for (auto _ : state) benchmark::DoNotOptimize(sg.apply(xs));
}
BENCHMARK(BM_SavitzkyGolay_400);

core::EncoderPair& micro_encoders() {
  static core::EncoderPair encoders = [] {
    Rng rng(6);
    return core::EncoderPair(12, rng);
  }();
  return encoders;
}

void BM_ImuEncoderInference(benchmark::State& state) {
  nn::Tensor input({3, 200});
  Rng rng(7);
  for (std::size_t i = 0; i < input.size(); ++i) input[i] = static_cast<float>(rng.normal());
  for (auto _ : state) benchmark::DoNotOptimize(micro_encoders().imu_features(input));
}
BENCHMARK(BM_ImuEncoderInference);

void BM_EncoderBatchedForward(benchmark::State& state) {
  // Cross-session batched IMU-En forward (DESIGN.md §11.3): B samples
  // through one shared-GEMM lowering. B = 1 is the bit-identical serial
  // delegation; the per-sample time should fall as B grows until the GEMMs
  // saturate. items_per_second is samples (not batches) per second.
  const std::size_t batch = static_cast<std::size_t>(state.range(0));
  nn::BatchedInference infer(micro_encoders().imu_encoder(), 3, 200);
  Rng rng(17);
  std::vector<nn::Tensor> inputs;
  std::vector<const nn::Tensor*> ptrs;
  for (std::size_t s = 0; s < batch; ++s) {
    nn::Tensor t({3, 200});
    for (std::size_t i = 0; i < t.size(); ++i) t[i] = static_cast<float>(rng.normal());
    inputs.push_back(std::move(t));
  }
  for (const auto& t : inputs) ptrs.push_back(&t);
  for (auto _ : state)
    benchmark::DoNotOptimize(infer.forward({ptrs.data(), ptrs.size()}));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(batch));
}
BENCHMARK(BM_EncoderBatchedForward)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_Conv1dForward(benchmark::State& state) {
  // The IMU encoder's first layer shape: Conv1D(3 -> 16, k=7, s=2, p=3).
  Rng rng(11);
  nn::Conv1D conv(3, 16, 7, 2, 3, rng);
  nn::Tensor input({1, 3, 200});
  for (std::size_t i = 0; i < input.size(); ++i) input[i] = static_cast<float>(rng.normal());
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(input, false));
}
BENCHMARK(BM_Conv1dForward);

void BM_DenseForward(benchmark::State& state) {
  // The IMU encoder's bottleneck layer shape: Dense(1200 -> 128).
  Rng rng(12);
  nn::Dense dense(1200, 128, rng);
  nn::Tensor input({1, 1200});
  for (std::size_t i = 0; i < input.size(); ++i) input[i] = static_cast<float>(rng.normal());
  for (auto _ : state) benchmark::DoNotOptimize(dense.forward(input, false));
}
BENCHMARK(BM_DenseForward);

void BM_GestureSimulation(benchmark::State& state) {
  sim::ScenarioConfig sc;
  sc.gesture.active_s = 3.0;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    sim::ScenarioSimulator simulator(sc, ++seed);
    benchmark::DoNotOptimize(simulator.run());
  }
}
BENCHMARK(BM_GestureSimulation);

void BM_FullKeyAgreement256(benchmark::State& state) {
  protocol::SessionConfig config;
  config.params.seed_bits = 48;
  config.params.key_bits = 256;
  config.params.eta = 0.1;
  crypto::Drbg m(8), s(9), seed_rng(10);
  const BitVec seed = seed_rng.random_bits(48);
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol::run_key_agreement(config, seed, seed, m, s));
  }
}
BENCHMARK(BM_FullKeyAgreement256);

// --- SIMD kernel benchmarks (DESIGN.md §8.5) -------------------------------
// These go through the public dispatched entry points, so they measure
// whatever tier runtime::cpu selected (override with WAVEKEY_SIMD).

void BM_Gf256AddmulSlice(benchmark::State& state) {
  Rng rng(13);
  std::vector<std::uint8_t> dst(4096), src(4096);
  for (auto& v : src) v = static_cast<std::uint8_t>(rng.uniform_u64(256));
  for (auto _ : state) {
    ecc::Gf256::addmul_slice(dst.data(), src.data(), dst.size(), 0x57);
    benchmark::DoNotOptimize(dst.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_Gf256AddmulSlice);

void BM_RsEncode(benchmark::State& state) {
  // RS(255, 223): 32 parity bytes, the widest shape the protocol uses.
  const ecc::ReedSolomon rs(32);
  Rng rng(14);
  std::vector<std::uint8_t> data(223);
  for (auto& d : data) d = static_cast<std::uint8_t>(rng.uniform_u64(256));
  for (auto _ : state) benchmark::DoNotOptimize(rs.encode(data));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 223);
}
BENCHMARK(BM_RsEncode);

void BM_ChaCha20Block(benchmark::State& state) {
  const std::vector<std::uint8_t> key(32, 0x42), nonce(12, 0x24);
  crypto::ChaCha20 c(key, nonce);
  std::vector<std::uint8_t> out(4096);
  for (auto _ : state) {
    c.keystream(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_ChaCha20Block);

void BM_GemmF32(benchmark::State& state) {
  // 64x64x64 NN-shaped multiply through the dispatched gemm_nn.
  constexpr std::size_t kDim = 64;
  Rng rng(15);
  std::vector<float> a(kDim * kDim), b(kDim * kDim), c(kDim * kDim, 0.0f);
  for (auto& v : a) v = static_cast<float>(rng.normal());
  for (auto& v : b) v = static_cast<float>(rng.normal());
  for (auto _ : state) {
    nn::gemm_nn(kDim, kDim, kDim, a.data(), kDim, b.data(), kDim, c.data(), kDim, false);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * 2 * kDim * kDim * kDim);
}
BENCHMARK(BM_GemmF32);

void BM_ClusterFrame(benchmark::State& state) {
  // Gateway wire round-trip: envelope serialize -> CRC frame -> unframe ->
  // parse, on a typical 64-byte inner request. This is the per-copy overhead
  // the WAN transport adds on top of the access protocol itself.
  server::ClusterRequest request;
  request.request_id = 0x123456789ABCull;
  request.tenant_id = 42;
  request.inner.assign(64, 0xA7);
  for (auto _ : state) {
    const protocol::Bytes framed = server::frame_message(request.serialize());
    auto payload = server::unframe_message(framed);
    benchmark::DoNotOptimize(server::ClusterRequest::parse(*payload));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ClusterFrame);

void BM_PartitionMapRoute(benchmark::State& state) {
  // Hot routing lookup of the cluster serving path: session id -> partition
  // -> owners, against a prebuilt 8-node / 256-partition ring.
  server::PartitionMap map(256, 64);
  std::vector<server::NodeId> nodes;
  for (server::NodeId id = 0; id < 8; ++id) nodes.push_back(id);
  map.rebuild(nodes);
  std::uint64_t sid = 0;
  for (auto _ : state) {
    const std::uint32_t p = server::partition_of(sid++, map.partitions());
    benchmark::DoNotOptimize(map.owners(p));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_PartitionMapRoute);

runtime::Task<void> noop_task() { co_return; }

void BM_EventLoopSpawn(benchmark::State& state) {
  // Full coroutine lifecycle on the serving loop: frame allocation, spawn,
  // hand-off to the worker, run, frame destruction. Batched 64 per drain()
  // so the completion wait amortizes and the number reflects per-task cost.
  constexpr int kBatch = 64;
  runtime::EventLoop loop(1);
  for (auto _ : state) {
    for (int i = 0; i < kBatch; ++i) loop.spawn(noop_task());
    loop.drain();
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * kBatch);
}
BENCHMARK(BM_EventLoopSpawn);

void BM_BufferPoolLease(benchmark::State& state) {
  // Steady-state lease -> write -> return round trip; after warm-up this is
  // a freelist pop/push with zero heap traffic (the vector keeps capacity).
  runtime::BufferPool pool;
  for (auto _ : state) {
    runtime::PooledBuffer lease = pool.lease();
    lease.bytes().push_back(0x5A);
    benchmark::DoNotOptimize(lease.bytes().data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_BufferPoolLease);

void BM_FramePooled(benchmark::State& state) {
  // Zero-copy twin of BM_ClusterFrame: serialize_into a leased buffer,
  // CRC-seal in place, unframe and parse as spans. Same wire bytes, no
  // per-frame allocations once the pool is warm.
  server::ClusterRequest request;
  request.request_id = 0x123456789ABCull;
  request.tenant_id = 42;
  request.inner.assign(64, 0xA7);
  runtime::BufferPool pool;
  for (auto _ : state) {
    runtime::PooledBuffer lease = pool.lease();
    {
      protocol::WireWriter writer(&lease.bytes());
      request.serialize_into(writer);
    }
    server::frame_seal(lease.bytes());
    const auto payload = server::unframe_view(lease.bytes());
    benchmark::DoNotOptimize(server::ClusterRequestView::parse(*payload));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FramePooled);

void BM_FlatMapProbe(benchmark::State& state) {
  // Hit-probe of the vault's open-addressing store at 64k resident keys:
  // one splitmix mix, one SIMD group scan, one tag-confirmed compare. This
  // is the per-lookup floor under every shard operation.
  runtime::FlatMap<std::uint64_t> map;
  constexpr std::uint64_t kN = 1 << 16;
  map.reserve(kN);
  for (std::uint64_t i = 0; i < kN; ++i) {
    const auto [idx, fresh] = map.find_or_insert(i * 7919 + 1);
    map.at(idx) = i;
  }
  std::uint64_t k = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(map.find(k * 7919 + 1));
    k = (k + 1) & (kN - 1);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FlatMapProbe);

void BM_VaultAuthorizeHot(benchmark::State& state) {
  // Full authorize of a valid pre-MACed request against a warm vault:
  // probe + optimistic snapshot + HMAC outside the lock + re-validate +
  // replay-window mark. Requests are prebuilt with increasing counters;
  // the periodic re-install that resets the replay window is amortized
  // over the batch (one install per 512 grants).
  server::VaultConfig vc;
  vc.shards = 8;
  vc.capacity = 8192;
  vc.ttl_s = 1e9;
  server::KeyVault vault(vc);
  server::SessionKey key{};
  for (std::size_t i = 0; i < key.size(); ++i) key[i] = static_cast<std::uint8_t>(i * 3 + 1);
  for (std::uint64_t id = 0; id < 4096; ++id)
    vault.install(id, std::span<const std::uint8_t>(key), 0.0);
  constexpr std::size_t kBatch = 512;
  struct Hot {
    server::AccessRequest req;
    protocol::Bytes mac_input;
  };
  std::vector<Hot> reqs;
  reqs.reserve(kBatch);
  for (std::size_t c = 1; c <= kBatch; ++c) {
    std::array<std::uint8_t, server::kNonceBytes> nonce{};
    nonce[0] = static_cast<std::uint8_t>(c);
    server::AccessRequest req =
        server::make_access_request(7, 0, c, nonce, {0xAC}, key);
    protocol::Bytes mac_input = req.mac_input();
    reqs.push_back(Hot{std::move(req), std::move(mac_input)});
  }
  std::size_t i = 0;
  for (auto _ : state) {
    if (i == reqs.size()) {
      vault.install(7, std::span<const std::uint8_t>(key), 0.0);
      i = 0;
    }
    const server::AccessStatus st =
        vault.authorize(reqs[i].req, reqs[i].mac_input, 0.0, nullptr);
    if (st != server::AccessStatus::kGranted) {
      state.SkipWithError("authorize did not grant");
      break;
    }
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_VaultAuthorizeHot);

void BM_KdfDerive(benchmark::State& state) {
  // Full four-level derivation master -> tenant -> tag -> purpose: three
  // chained labeled HKDF hops plus the purpose leaf (8 HMAC-SHA256
  // invocations end to end). This is the cold-cache cost of materializing
  // one tag's grant_mac key from nothing but the master secret.
  std::array<std::uint8_t, 32> master{};
  for (std::size_t i = 0; i < master.size(); ++i)
    master[i] = static_cast<std::uint8_t>(i * 7 + 3);
  const crypto::KdfTree tree(master);
  std::uint64_t tag = 0;
  for (auto _ : state) {
    const crypto::Digest256 key =
        tree.purpose_key(/*tenant_id=*/1, /*tag_uid=*/tag++, crypto::KeyPurpose::kGrantMac);
    benchmark::DoNotOptimize(key);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_KdfDerive);

void BM_GrantVerifyOffline(benchmark::State& state) {
  // Vault-free token acceptance on the actuator: parse + purpose-key MAC +
  // monotonic counter advance. Tokens are preminted with increasing
  // counters; the verifier reset that reopens the counter stream is
  // amortized over the batch.
  std::array<std::uint8_t, 32> master{};
  for (std::size_t i = 0; i < master.size(); ++i)
    master[i] = static_cast<std::uint8_t>(i * 5 + 1);
  server::GrantIssuer issuer(master);
  const server::ProvisionedTag tag = issuer.provision(/*tenant=*/1, /*tag_uid=*/42, 0x1);
  constexpr std::size_t kBatch = 512;
  std::vector<protocol::Bytes> wires;
  wires.reserve(kBatch);
  for (std::size_t i = 0; i < kBatch; ++i) {
    const auto token = issuer.issue(1, 42, /*actuator=*/5, 0x1, /*ttl_s=*/1e9, 0.0);
    wires.push_back(token->serialize());
  }
  auto verifier = std::make_unique<server::OfflineVerifier>(/*actuator_id=*/5);
  verifier->provision(tag);
  std::size_t i = 0;
  for (auto _ : state) {
    if (i == wires.size()) {
      verifier = std::make_unique<server::OfflineVerifier>(5);
      verifier->provision(tag);
      i = 0;
    }
    const server::AccessStatus st = verifier->verify(wires[i], 0.0);
    if (st != server::AccessStatus::kGranted) {
      state.SkipWithError("offline verify did not grant");
      break;
    }
    ++i;
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_GrantVerifyOffline);

void BM_AuditAppend(benchmark::State& state) {
  // One hash-chain link: serialize the record and extend
  // h_i = SHA256(h_{i-1} || record_i) under the shard lock (SHA-NI
  // dispatched where the host has it). The log restart that bounds memory
  // is amortized over 64Ki appends.
  crypto::Digest256 seal{};
  for (std::size_t i = 0; i < seal.size(); ++i) seal[i] = static_cast<std::uint8_t>(i + 9);
  auto log = std::make_unique<server::AuditLog>(server::AuditLog::Config{1, seal});
  server::AuditRecord record{};
  record.kind = server::AuditKind::kVerify;
  record.tenant_id = 1;
  record.tag_uid = 42;
  record.actuator_id = 5;
  record.status = server::AccessStatus::kGranted;
  std::uint64_t n = 0;
  for (auto _ : state) {
    if (log->total_size() >= 65536) {
      log = std::make_unique<server::AuditLog>(server::AuditLog::Config{1, seal});
    }
    record.counter = ++n;
    log->append(record);
  }
  benchmark::DoNotOptimize(log->head(0));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_AuditAppend);

// --- `--simd-check`: forced-scalar vs AVX2 speedup assertion ---------------
// Run from tools/ci.sh on AVX2 hosts: re-times the four SIMD kernels with
// the dispatch tier forced to scalar and then to AVX2 (in-process, via the
// test hook) and fails unless each shows at least a 2x win. On non-AVX2
// hosts this is a no-op success.

template <typename F>
double best_seconds(F&& f, int reps, int iters) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) f();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

template <typename F>
bool check_speedup(const char* name, F&& f, int iters) {
  using runtime::cpu::SimdTier;
  constexpr int kReps = 5;
  constexpr double kMinSpeedup = 2.0;
  runtime::cpu::force_tier_for_testing(SimdTier::kScalar);
  const double scalar_s = best_seconds(f, kReps, iters);
  runtime::cpu::force_tier_for_testing(SimdTier::kAvx2);
  const double avx2_s = best_seconds(f, kReps, iters);
  runtime::cpu::force_tier_for_testing(std::nullopt);
  const double speedup = scalar_s / avx2_s;
  const bool ok = speedup >= kMinSpeedup;
  std::printf("simd-check %-18s scalar %10.1f us  avx2 %10.1f us  speedup %5.2fx  [%s]\n",
              name, scalar_s * 1e6, avx2_s * 1e6, speedup, ok ? "ok" : "FAIL");
  return ok;
}

int run_simd_check() {
  using runtime::cpu::SimdTier;
  if (runtime::cpu::detected_tier() < SimdTier::kAvx2) {
    std::printf("simd-check: host lacks AVX2, skipping\n");
    return 0;
  }
  bool ok = true;

  Rng rng(16);
  std::vector<std::uint8_t> dst(4096), src(4096);
  for (auto& v : src) v = static_cast<std::uint8_t>(rng.uniform_u64(256));
  ok &= check_speedup(
      "Gf256AddmulSlice",
      [&] {
        ecc::Gf256::addmul_slice(dst.data(), src.data(), dst.size(), 0x57);
        benchmark::DoNotOptimize(dst.data());
      },
      2000);

  const ecc::ReedSolomon rs(32);
  std::vector<std::uint8_t> data(223);
  for (auto& d : data) d = static_cast<std::uint8_t>(rng.uniform_u64(256));
  ok &= check_speedup(
      "RsEncode", [&] { benchmark::DoNotOptimize(rs.encode(data)); }, 500);

  const std::vector<std::uint8_t> key(32, 0x42), nonce(12, 0x24);
  crypto::ChaCha20 chacha(key, nonce);
  std::vector<std::uint8_t> stream(4096);
  ok &= check_speedup(
      "ChaCha20Block",
      [&] {
        chacha.keystream(stream);
        benchmark::DoNotOptimize(stream.data());
      },
      1000);

  constexpr std::size_t kDim = 64;
  std::vector<float> ga(kDim * kDim), gb(kDim * kDim), gc(kDim * kDim, 0.0f);
  for (auto& v : ga) v = static_cast<float>(rng.normal());
  for (auto& v : gb) v = static_cast<float>(rng.normal());
  ok &= check_speedup(
      "GemmF32",
      [&] {
        nn::gemm_nn(kDim, kDim, kDim, ga.data(), kDim, gb.data(), kDim, gc.data(), kDim,
                    false);
        benchmark::DoNotOptimize(gc.data());
      },
      500);

  if (!ok) {
    std::printf("simd-check: FAILED (some kernels below the 2x floor)\n");
    return 1;
  }
  std::printf("simd-check: all kernels >= 2x over forced scalar\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--simd-check") return run_simd_check();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
