// Micro-benchmarks (google-benchmark) of the primitives underlying the
// headline numbers: hashing, the OT group arithmetic, Reed-Solomon,
// Savitzky-Golay, the NN inference, and one full protocol run. These back
// the tau/Table III measurements with per-primitive costs.

#include <benchmark/benchmark.h>

#include "core/dataset.hpp"
#include "core/encoders.hpp"
#include "crypto/drbg.hpp"
#include "crypto/field25519.hpp"
#include "crypto/sha256.hpp"
#include "dsp/savitzky_golay.hpp"
#include "ecc/reed_solomon.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "protocol/session.hpp"
#include "sim/scenario.hpp"

using namespace wavekey;

namespace {

void BM_Sha256_1KiB(benchmark::State& state) {
  std::vector<std::uint8_t> data(1024, 0xAB);
  for (auto _ : state) benchmark::DoNotOptimize(crypto::Sha256::hash(data));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_Sha256_1KiB);

void BM_ChaChaDrbg_1KiB(benchmark::State& state) {
  crypto::Drbg drbg(1);
  std::vector<std::uint8_t> out(1024);
  for (auto _ : state) {
    drbg.random_bytes(out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 1024);
}
BENCHMARK(BM_ChaChaDrbg_1KiB);

void BM_Fe25519_Pow(benchmark::State& state) {
  crypto::Drbg drbg(2);
  auto e = drbg.random_scalar_bytes();
  e[31] &= 0x7F;
  const crypto::Fe25519 g = crypto::Fe25519::generator();
  for (auto _ : state) benchmark::DoNotOptimize(g.pow(e));
}
BENCHMARK(BM_Fe25519_Pow);

void BM_Fe25519_GeneratorPow(benchmark::State& state) {
  crypto::Drbg drbg(2);
  auto e = drbg.random_scalar_bytes();
  e[31] &= 0x7F;
  benchmark::DoNotOptimize(crypto::Fe25519::generator_pow(e));  // build the comb table
  for (auto _ : state) benchmark::DoNotOptimize(crypto::Fe25519::generator_pow(e));
}
BENCHMARK(BM_Fe25519_GeneratorPow);

void BM_Fe25519_Square(benchmark::State& state) {
  crypto::Drbg drbg(2);
  auto e = drbg.random_scalar_bytes();
  e[31] &= 0x7F;
  crypto::Fe25519 x = crypto::Fe25519::generator().pow(e);
  for (auto _ : state) {
    x = x.square();
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_Fe25519_Square);

void BM_Fe25519_Inverse(benchmark::State& state) {
  crypto::Drbg drbg(2);
  auto e = drbg.random_scalar_bytes();
  e[31] &= 0x7F;
  const crypto::Fe25519 x = crypto::Fe25519::generator().pow(e);
  for (auto _ : state) benchmark::DoNotOptimize(x.inverse());
}
BENCHMARK(BM_Fe25519_Inverse);

void BM_OtInstance(benchmark::State& state) {
  crypto::Drbg rng(3);
  const std::vector<std::uint8_t> s0(8, 1), s1(8, 2);
  for (auto _ : state) {
    crypto::OtSender sender(rng);
    crypto::OtReceiver receiver(rng, true, sender.first_message());
    const auto cts = sender.encrypt(receiver.response(), s0, s1);
    benchmark::DoNotOptimize(receiver.decrypt(cts));
  }
}
BENCHMARK(BM_OtInstance);

void BM_OtSenderEncrypt(benchmark::State& state) {
  crypto::Drbg rng(3);
  const std::vector<std::uint8_t> s0(8, 1), s1(8, 2);
  const crypto::OtSender sender(rng);
  const crypto::OtReceiver receiver(rng, true, sender.first_message());
  for (auto _ : state)
    benchmark::DoNotOptimize(sender.encrypt(receiver.response(), s0, s1));
}
BENCHMARK(BM_OtSenderEncrypt);

void BM_ReedSolomon_Decode(benchmark::State& state) {
  const ecc::ReedSolomon rs(16);
  Rng rng(4);
  std::vector<std::uint8_t> data(100);
  for (auto& d : data) d = static_cast<std::uint8_t>(rng.uniform_u64(256));
  auto cw = rs.encode(data);
  for (int e = 0; e < 8; ++e) cw[e * 13] ^= 0x5A;
  for (auto _ : state) benchmark::DoNotOptimize(rs.decode(cw));
}
BENCHMARK(BM_ReedSolomon_Decode);

void BM_SavitzkyGolay_400(benchmark::State& state) {
  const dsp::SavitzkyGolayFilter sg(11, 3);
  Rng rng(5);
  std::vector<double> xs(400);
  for (auto& x : xs) x = rng.normal();
  for (auto _ : state) benchmark::DoNotOptimize(sg.apply(xs));
}
BENCHMARK(BM_SavitzkyGolay_400);

core::EncoderPair& micro_encoders() {
  static core::EncoderPair encoders = [] {
    Rng rng(6);
    return core::EncoderPair(12, rng);
  }();
  return encoders;
}

void BM_ImuEncoderInference(benchmark::State& state) {
  nn::Tensor input({3, 200});
  Rng rng(7);
  for (std::size_t i = 0; i < input.size(); ++i) input[i] = static_cast<float>(rng.normal());
  for (auto _ : state) benchmark::DoNotOptimize(micro_encoders().imu_features(input));
}
BENCHMARK(BM_ImuEncoderInference);

void BM_Conv1dForward(benchmark::State& state) {
  // The IMU encoder's first layer shape: Conv1D(3 -> 16, k=7, s=2, p=3).
  Rng rng(11);
  nn::Conv1D conv(3, 16, 7, 2, 3, rng);
  nn::Tensor input({1, 3, 200});
  for (std::size_t i = 0; i < input.size(); ++i) input[i] = static_cast<float>(rng.normal());
  for (auto _ : state) benchmark::DoNotOptimize(conv.forward(input, false));
}
BENCHMARK(BM_Conv1dForward);

void BM_DenseForward(benchmark::State& state) {
  // The IMU encoder's bottleneck layer shape: Dense(1200 -> 128).
  Rng rng(12);
  nn::Dense dense(1200, 128, rng);
  nn::Tensor input({1, 1200});
  for (std::size_t i = 0; i < input.size(); ++i) input[i] = static_cast<float>(rng.normal());
  for (auto _ : state) benchmark::DoNotOptimize(dense.forward(input, false));
}
BENCHMARK(BM_DenseForward);

void BM_GestureSimulation(benchmark::State& state) {
  sim::ScenarioConfig sc;
  sc.gesture.active_s = 3.0;
  std::uint64_t seed = 0;
  for (auto _ : state) {
    sim::ScenarioSimulator simulator(sc, ++seed);
    benchmark::DoNotOptimize(simulator.run());
  }
}
BENCHMARK(BM_GestureSimulation);

void BM_FullKeyAgreement256(benchmark::State& state) {
  protocol::SessionConfig config;
  config.params.seed_bits = 48;
  config.params.key_bits = 256;
  config.params.eta = 0.1;
  crypto::Drbg m(8), s(9), seed_rng(10);
  const BitVec seed = seed_rng.random_bits(48);
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol::run_key_agreement(config, seed, seed, m, s));
  }
}
BENCHMARK(BM_FullKeyAgreement256);

}  // namespace

BENCHMARK_MAIN();
