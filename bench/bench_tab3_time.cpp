// Reproduces Table III: end-to-end key-establishment time for different key
// lengths (128/168/192/256 for AES & 3DES, 2048 for RC4). The 2 s gesture
// dominates; the crypto compute is *measured* on this machine inside the
// protocol engine (see protocol/session.cpp), exactly the paper's
// methodology of gesture time + computation time.

#include "bench/common.hpp"
#include "numeric/stats.hpp"

using namespace wavekey;

int main() {
  bench::print_header("Table III -- key-establishment time vs key length",
                      "WaveKey (ICDCS'24) SVI-G, Table III");

  const int n = bench::scaled(12);
  const std::size_t key_lengths[] = {128, 168, 192, 256, 2048};
  const double paper_ms[] = {2345, 2332, 2347, 2357, 2362};
  std::printf("%d sessions per key length (mean of successful sessions)\n\n", n);
  std::printf("Key length (bit)       |");
  for (std::size_t k : key_lengths) std::printf("%7zu |", k);
  std::printf("\nTime measured (ms)     |");

  core::WaveKeySystem& system = bench::system();
  const std::size_t original = system.config().key_bits;
  for (std::size_t k : key_lengths) {
    system.config().key_bits = k;
    std::vector<double> times;
    for (int i = 0; i < n; ++i) {
      const auto out = system.establish_key(bench::default_scenario(i),
                                            4000 + static_cast<std::uint64_t>(i) * 131 + k);
      if (out.success) times.push_back(out.elapsed_s * 1000.0);
    }
    std::printf("%7.0f |", times.empty() ? 0.0 : mean(times));
  }
  system.config().key_bits = original;

  std::printf("\nTime paper (ms)        |");
  for (double p : paper_ms) std::printf("%7.0f |", p);
  std::printf("\n\nNote: the paper's gesture window dominates both columns (2000 ms);\n");
  std::printf("the remainder is computation, measured live on this machine here.\n");
  return 0;
}
