// Offline-grant soak (DESIGN.md §14): one actuator rides a full
// reachable -> partitioned -> healed cycle and the ledger stays EXACT at
// every step:
//
//  * reachable — online AccessRequests through a clean gateway all grant,
//    and every vault decision lands on the serving node's hash chain: the
//    chain's record count equals the cluster's executed count, the chain
//    verifies end-to-end, and a response's cross-linked head matches the
//    node's live head;
//  * partitioned — a blackhole gateway (100% loss both ways) can reach
//    nothing, yet every pre-issued GrantToken resolves through the embedded
//    OfflineVerifier with a closed-form outcome: the K in-order tokens all
//    grant vault-free, replays of the last accepted token -> kReplay,
//    held-back earlier counters -> kCounterRollback, flipped MACs ->
//    kBadMac, short-TTL tokens -> kExpired, disallowed scope bits ->
//    kWrongScope, unprovisioned tags -> kUnknownSession, token-tagged
//    garbage -> kMalformed, and non-token wires fall through to
//    kRetryExhausted (no fallback for vault-keyed requests). Mid-partition
//    the issuer's state is exported to a replacement which keeps minting —
//    zero counter reuse — and a sibling tag's lineage rotation leaves the
//    soak tag's keys byte-identical (the diversification proof);
//  * healed — the issuer's partition-time revocations propagate to the
//    verifier and every revoked-tag token is refused; online traffic
//    resumes and the audit chain simply extends.
//
// The verifier's own audit chain must hold exactly one record per
// verification attempt, verify end-to-end, and pinpoint the exact index of
// a deliberately corrupted record (restored afterwards).
//
// Exit code asserts the full ledger; tools/ci.sh re-validates the emitted
// JSON in its grants_gate leg.
//
// Knobs: WAVEKEY_BENCH_SCALE scales the token volume (default 1.0).

#include <algorithm>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "crypto/drbg.hpp"
#include "server/cluster.hpp"
#include "server/gateway.hpp"
#include "server/grants.hpp"

using namespace wavekey;
using namespace wavekey::server;

namespace {

double bench_scale() {
  if (const char* env = std::getenv("WAVEKEY_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 1.0;
}

std::array<std::uint8_t, kNonceBytes> nonce_from(std::uint64_t v) {
  std::array<std::uint8_t, kNonceBytes> nonce{};
  for (std::size_t i = 0; i < nonce.size(); ++i)
    nonce[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return nonce;
}

/// Thread-safe outcome tally + completion latch for one gateway phase.
struct Tally {
  std::mutex mutex;
  std::condition_variable cv;
  std::uint64_t submitted = 0;
  std::uint64_t resolved = 0;
  std::uint64_t offline = 0;
  std::uint64_t outcomes[kAccessStatusCount] = {};

  ReaderGateway::Callback recorder() {
    return [this](const GatewayResult& result) {
      std::lock_guard<std::mutex> lock(mutex);
      resolved += 1;
      if (result.offline) offline += 1;
      outcomes[static_cast<std::size_t>(result.status)] += 1;
      cv.notify_all();
    };
  }

  void submit(ReaderGateway& gw, std::uint64_t tenant, const Bytes& wire) {
    {
      std::lock_guard<std::mutex> lock(mutex);
      submitted += 1;
    }
    gw.submit(tenant, wire, recorder());
  }

  std::uint64_t count(AccessStatus status) {
    std::lock_guard<std::mutex> lock(mutex);
    return outcomes[static_cast<std::size_t>(status)];
  }
  bool all_resolved() {
    std::lock_guard<std::mutex> lock(mutex);
    std::uint64_t total = 0;
    for (std::uint64_t c : outcomes) total += c;
    return resolved == submitted && total == resolved;
  }
};

const char* ok(bool b) { return b ? "true" : "false"; }

constexpr std::uint64_t kTenant = 1;
constexpr std::uint64_t kTag = 42;        ///< the soak tag
constexpr std::uint64_t kSiblingTag = 44; ///< rotated mid-partition (scoping proof)
constexpr std::uint64_t kRevokedTag = 99; ///< revoked mid-partition
constexpr std::uint64_t kActuator = 5;

}  // namespace

int main() {
  const double scale = bench_scale();
  const std::uint64_t online_requests =
      std::max<std::uint64_t>(16, static_cast<std::uint64_t>(32 * scale));
  const std::uint64_t offline_grants =
      std::max<std::uint64_t>(16, static_cast<std::uint64_t>(64 * scale));
  const std::uint64_t held_back = 6;     // earlier counters submitted late -> rollback
  const std::uint64_t replays = 8;       // resubmissions of the last accepted token
  const std::uint64_t bad_macs = 6;
  const std::uint64_t expired = 4;
  const std::uint64_t wrong_scope = 4;
  const std::uint64_t unknown_tag = 4;
  const std::uint64_t malformed = 6;     // token-tagged garbage
  const std::uint64_t non_token = 4;     // garbage that must NOT hit the fallback
  const std::uint64_t handoff_grants = 8;
  const std::uint64_t revoked_tokens = 5;
  const std::uint64_t healed_requests = 8;

  // ---- shared fixtures ------------------------------------------------------
  crypto::Drbg rng(0x0FF1CEull);
  Bytes master(32);
  rng.random_bytes(master);
  crypto::Digest256 seal{};
  rng.random_bytes(seal);

  AuditLog issuer_audit(AuditLog::Config{1, seal});
  AuditLog verifier_audit(AuditLog::Config{1, seal});
  GrantIssuer issuer(master, &issuer_audit);
  OfflineVerifier verifier(kActuator, &verifier_audit);
  verifier.provision(issuer.provision(kTenant, kTag, /*allowed_scopes=*/0x3));
  verifier.provision(issuer.provision(kTenant, kRevokedTag, 0x3));

  ClusterConfig cluster_config;
  cluster_config.nodes = 1;
  cluster_config.partitions = 16;
  cluster_config.vault.capacity = online_requests * 2 + 256;
  cluster_config.audit_seal = seal;
  VaultCluster cluster(cluster_config);

  std::vector<SessionKey> keys(online_requests);
  for (std::uint64_t sid = 0; sid < online_requests; ++sid) {
    rng.random_bytes(keys[sid]);
    if (!cluster.install(sid, keys[sid])) {
      std::printf("{\"bench\": \"grants\", \"error\": \"install failed\"}\n");
      return 1;
    }
  }
  const auto online_wire = [&](std::uint64_t sid, std::uint64_t counter) {
    return make_access_request(sid, 0, counter, nonce_from(counter), {0xD0}, keys[sid])
        .serialize();
  };

  // ---- phase 1: reachable — online traffic, audited ------------------------
  Tally reachable;
  {
    GatewayConfig cfg;
    cfg.gateway_id = 1;
    cfg.workers = 2;
    cfg.queue_capacity = online_requests + 16;
    cfg.channel.seed = 0xC1EA7;  // all fault rates zero: deterministic
    ReaderGateway gw(cluster, cfg);
    for (std::uint64_t sid = 0; sid < online_requests; ++sid)
      reachable.submit(gw, kTenant, online_wire(sid, 1));
    gw.finish();
  }
  // One direct request pins the cross-link: the response must carry the
  // serving node's live chain head.
  bool crosslink_ok = false;
  {
    ClusterRequest probe;
    probe.request_id = 0xCAFE;
    probe.tenant_id = kTenant;
    probe.inner = online_wire(0, 2);
    const ClusterResponse resp = cluster.execute(probe);
    const AuditHead head = cluster.audit_log(0)->head(0);
    crosslink_ok = resp.status == AccessStatus::kGranted && resp.audit_count == head.count &&
                   resp.audit_hash == head.hash && resp.audit_count > 0;
  }
  const std::uint64_t executed_reachable = cluster.stats().executed;
  const bool reachable_ledger_ok =
      reachable.all_resolved() && reachable.count(AccessStatus::kGranted) == online_requests &&
      cluster.audit_log(0)->total_size() == executed_reachable &&
      cluster.audit_log(0)->verify_head(0) &&
      cluster.audit_log(0)->verify_range(0, 0, executed_reachable) == std::nullopt;

  // ---- token pre-issue (issue order defines the counter stream) ------------
  const double kNow = 1.0;  // the verifier's frozen virtual clock (seconds)
  const auto issue_wire = [&](GrantIssuer& iss, std::uint64_t tag, std::uint32_t scope,
                              double ttl_s) {
    const auto token = iss.issue(kTenant, tag, kActuator, scope, ttl_s, 0.0);
    return token ? token->serialize() : Bytes{};
  };

  std::vector<Bytes> held_wires, main_wires, badmac_wires, expired_wires, scope_wires,
      unknown_wires, revoked_wires;
  for (std::uint64_t i = 0; i < held_back; ++i)
    held_wires.push_back(issue_wire(issuer, kTag, 0x1, 3600.0));
  for (std::uint64_t i = 0; i < offline_grants; ++i)
    main_wires.push_back(issue_wire(issuer, kTag, 0x1, 3600.0));
  for (std::uint64_t i = 0; i < bad_macs; ++i) {
    Bytes w = issue_wire(issuer, kTag, 0x1, 3600.0);
    w[w.size() - 1 - (i % kMacBytes)] ^= 0x40;  // flip a MAC byte
    badmac_wires.push_back(std::move(w));
  }
  for (std::uint64_t i = 0; i < expired; ++i)
    expired_wires.push_back(issue_wire(issuer, kTag, 0x1, /*ttl_s=*/0.5));  // < kNow
  for (std::uint64_t i = 0; i < wrong_scope; ++i)
    scope_wires.push_back(issue_wire(issuer, kTag, /*scope=*/0x4, 3600.0));  // outside 0x3
  for (std::uint64_t i = 0; i < unknown_tag; ++i)
    unknown_wires.push_back(issue_wire(issuer, /*tag=*/43, 0x1, 3600.0));
  for (std::uint64_t i = 0; i < revoked_tokens; ++i)
    revoked_wires.push_back(issue_wire(issuer, kRevokedTag, 0x1, 3600.0));

  // ---- phase 2: partitioned — blackhole WAN, offline verification ----------
  // Mid-partition chaos on the control plane: the sibling tag rotates (the
  // soak tag's keys must not move a byte), the revoked tag is revoked, and
  // the issuer fails over to a replacement that continues the stream.
  const crypto::Digest256 soak_key_before =
      issuer.provision(kTenant, kTag, 0x3).grant_mac_key;
  const bool sibling_rotated = issuer.rotate_tag(kTenant, kSiblingTag).has_value();
  const crypto::Digest256 soak_key_after =
      issuer.provision(kTenant, kTag, 0x3).grant_mac_key;
  const bool sibling_scoping_ok = sibling_rotated && soak_key_before == soak_key_after;

  const bool revoke_ok = issuer.revoke_tag(kTenant, kRevokedTag);

  GrantIssuer replacement(master, &issuer_audit);
  replacement.import_state(issuer.export_state());
  std::vector<Bytes> handoff_wires;
  for (std::uint64_t i = 0; i < handoff_grants; ++i)
    handoff_wires.push_back(issue_wire(replacement, kTag, 0x1, 3600.0));

  Tally partitioned;
  GatewayStats partitioned_gw{};
  {
    GatewayConfig cfg;
    cfg.gateway_id = 2;
    cfg.workers = 1;  // preserve submission order: the counter stream is strict
    cfg.queue_capacity = 4096;
    cfg.max_attempts = 2;
    cfg.attempt_timeout_s = 0.001;
    cfg.backoff_base_s = 0.0;
    cfg.backoff_max_s = 0.0;
    cfg.channel.seed = 0xB1AC;
    cfg.channel.mobile_to_server.loss = 1.0;  // total partition, both ways
    cfg.channel.server_to_mobile.loss = 1.0;
    cfg.offline_verifier = &verifier;
    cfg.offline_now = [kNow] { return kNow; };
    ReaderGateway gw(cluster, cfg);

    for (const Bytes& w : main_wires) partitioned.submit(gw, kTenant, w);
    for (std::uint64_t i = 0; i < replays; ++i)
      partitioned.submit(gw, kTenant, main_wires.back());
    for (const Bytes& w : held_wires) partitioned.submit(gw, kTenant, w);
    for (const Bytes& w : badmac_wires) partitioned.submit(gw, kTenant, w);
    for (const Bytes& w : expired_wires) partitioned.submit(gw, kTenant, w);
    for (const Bytes& w : scope_wires) partitioned.submit(gw, kTenant, w);
    for (const Bytes& w : unknown_wires) partitioned.submit(gw, kTenant, w);
    for (std::uint64_t i = 0; i < malformed; ++i) {
      Bytes garbage = {static_cast<std::uint8_t>(protocol::MessageType::kGrantToken),
                       static_cast<std::uint8_t>(i), 0xFF, 0x42};
      partitioned.submit(gw, kTenant, garbage);
    }
    for (std::uint64_t i = 0; i < non_token; ++i) {
      Bytes garbage = {static_cast<std::uint8_t>(protocol::MessageType::kAccessRequest),
                       static_cast<std::uint8_t>(i), 0xFF};
      partitioned.submit(gw, kTenant, garbage);
    }
    for (const Bytes& w : handoff_wires) partitioned.submit(gw, kTenant, w);
    gw.finish();
    partitioned_gw = gw.stats();
  }

  const std::uint64_t offline_attempts = offline_grants + replays + held_back + bad_macs +
                                         expired + wrong_scope + unknown_tag + malformed +
                                         handoff_grants;
  const bool partitioned_ledger_ok =
      partitioned.all_resolved() &&
      partitioned.count(AccessStatus::kGranted) == offline_grants + handoff_grants &&
      partitioned.count(AccessStatus::kReplay) == replays &&
      partitioned.count(AccessStatus::kCounterRollback) == held_back &&
      partitioned.count(AccessStatus::kBadMac) == bad_macs &&
      partitioned.count(AccessStatus::kExpired) == expired &&
      partitioned.count(AccessStatus::kWrongScope) == wrong_scope &&
      partitioned.count(AccessStatus::kUnknownSession) == unknown_tag &&
      partitioned.count(AccessStatus::kMalformed) == malformed &&
      partitioned.count(AccessStatus::kRetryExhausted) == non_token &&
      partitioned.offline == offline_attempts &&
      partitioned_gw.offline_verified == offline_attempts &&
      partitioned_gw.offline_granted == offline_grants + handoff_grants;
  // Not one envelope got through the blackhole to the cluster.
  const bool vault_free_ok = cluster.stats().executed == executed_reachable;

  // ---- phase 3: healed — revocations propagate, online traffic resumes -----
  for (const auto& [tenant, tag] : issuer.revoked_tags()) verifier.revoke(tenant, tag);
  std::uint64_t revoked_refused = 0;
  for (const Bytes& w : revoked_wires)
    revoked_refused += verifier.verify(w, kNow) == AccessStatus::kRevoked ? 1 : 0;
  const bool revoked_ledger_ok = revoke_ok && revoked_refused == revoked_tokens;

  Tally healed;
  {
    GatewayConfig cfg;
    cfg.gateway_id = 3;
    cfg.workers = 2;
    cfg.queue_capacity = healed_requests + 16;
    cfg.channel.seed = 0x4EA1;
    ReaderGateway gw(cluster, cfg);
    for (std::uint64_t i = 0; i < healed_requests; ++i)
      healed.submit(gw, kTenant, online_wire(i % online_requests, 3));
    gw.finish();
  }
  const std::uint64_t executed_total = cluster.stats().executed;
  const bool healed_ledger_ok =
      healed.all_resolved() && healed.count(AccessStatus::kGranted) == healed_requests &&
      cluster.audit_log(0)->total_size() == executed_total &&
      cluster.audit_log(0)->verify_range(0, 0, executed_total) == std::nullopt;

  // ---- audit-chain ledger ---------------------------------------------------
  // The verifier chained exactly one record per attempt (gateway fallback
  // attempts + the direct revocation checks).
  const std::uint64_t verify_records = offline_attempts + revoked_tokens;
  bool verifier_chain_ok = verifier_audit.total_size() == verify_records &&
                           verifier_audit.verify_head(0) &&
                           verifier_audit.verify_range(0, 0, verify_records) == std::nullopt;
  // Tamper probe: flip one byte mid-chain; the fsck must name that exact
  // index, and restoring the byte must heal the chain.
  const std::uint64_t tampered_index = verify_records / 2;
  verifier_audit.corrupt_record_for_test(0, tampered_index, 3, 0x20);
  const auto pinpointed = verifier_audit.verify_range(0, 0, verify_records);
  const bool tamper_ok = pinpointed.has_value() && *pinpointed == tampered_index;
  verifier_audit.corrupt_record_for_test(0, tampered_index, 3, 0x20);
  verifier_chain_ok =
      verifier_chain_ok && verifier_audit.verify_range(0, 0, verify_records) == std::nullopt;

  // The issuer chain holds exactly one record per control-plane event.
  const GrantIssuer::Stats is1 = issuer.stats();
  const GrantIssuer::Stats is2 = replacement.stats();
  const std::uint64_t provisions = 2 /*initial*/ + 2 /*sibling proof*/;
  const std::uint64_t handoffs = 1;
  const std::uint64_t issuer_records = is1.issued + is2.issued + is1.refused + is2.refused +
                                       is1.rotations + is2.rotations + is1.revocations +
                                       is2.revocations + provisions + handoffs;
  const bool issuer_chain_ok =
      issuer_audit.total_size() == issuer_records && issuer_audit.verify_head(0) &&
      issuer_audit.verify_range(0, 0, issuer_records) == std::nullopt;

  // ---- report ---------------------------------------------------------------
  std::printf("{\n  \"bench\": \"grants\",\n");
  std::printf("  \"online_requests\": %llu,\n  \"offline_grants\": %llu,\n"
              "  \"handoff_grants\": %llu,\n",
              static_cast<unsigned long long>(online_requests),
              static_cast<unsigned long long>(offline_grants),
              static_cast<unsigned long long>(handoff_grants));
  const auto phase_json = [](const char* name, Tally& t, bool last = false) {
    std::printf("    \"%s\": {\"submitted\": %llu, \"resolved\": %llu, \"granted\": %llu, "
                "\"replay\": %llu, \"rollback\": %llu, \"bad_mac\": %llu, \"expired\": %llu, "
                "\"wrong_scope\": %llu, \"unknown\": %llu, \"malformed\": %llu, "
                "\"retry_exhausted\": %llu, \"offline\": %llu}%s\n",
                name, static_cast<unsigned long long>(t.submitted),
                static_cast<unsigned long long>(t.resolved),
                static_cast<unsigned long long>(t.count(AccessStatus::kGranted)),
                static_cast<unsigned long long>(t.count(AccessStatus::kReplay)),
                static_cast<unsigned long long>(t.count(AccessStatus::kCounterRollback)),
                static_cast<unsigned long long>(t.count(AccessStatus::kBadMac)),
                static_cast<unsigned long long>(t.count(AccessStatus::kExpired)),
                static_cast<unsigned long long>(t.count(AccessStatus::kWrongScope)),
                static_cast<unsigned long long>(t.count(AccessStatus::kUnknownSession)),
                static_cast<unsigned long long>(t.count(AccessStatus::kMalformed)),
                static_cast<unsigned long long>(t.count(AccessStatus::kRetryExhausted)),
                static_cast<unsigned long long>(t.offline), last ? "" : ",");
  };
  std::printf("  \"phases\": {\n");
  phase_json("reachable", reachable);
  phase_json("partitioned", partitioned);
  phase_json("healed", healed, true);
  std::printf("  },\n");
  std::printf("  \"audit\": {\"cluster_records\": %llu, \"verifier_records\": %llu, "
              "\"issuer_records\": %llu, \"tampered_index\": %llu, \"pinpointed\": %lld},\n",
              static_cast<unsigned long long>(cluster.audit_log(0)->total_size()),
              static_cast<unsigned long long>(verifier_audit.total_size()),
              static_cast<unsigned long long>(issuer_audit.total_size()),
              static_cast<unsigned long long>(tampered_index),
              pinpointed ? static_cast<long long>(*pinpointed) : -1);
  std::printf("  \"revoked_refused\": %llu,\n",
              static_cast<unsigned long long>(revoked_refused));
  std::printf("  \"reachable_ledger_ok\": %s,\n  \"crosslink_ok\": %s,\n"
              "  \"partitioned_ledger_ok\": %s,\n  \"vault_free_ok\": %s,\n"
              "  \"sibling_scoping_ok\": %s,\n  \"revoked_ledger_ok\": %s,\n"
              "  \"healed_ledger_ok\": %s,\n  \"verifier_chain_ok\": %s,\n"
              "  \"tamper_ok\": %s,\n  \"issuer_chain_ok\": %s\n}\n",
              ok(reachable_ledger_ok), ok(crosslink_ok), ok(partitioned_ledger_ok),
              ok(vault_free_ok), ok(sibling_scoping_ok), ok(revoked_ledger_ok),
              ok(healed_ledger_ok), ok(verifier_chain_ok), ok(tamper_ok), ok(issuer_chain_ok));

  const bool pass = reachable_ledger_ok && crosslink_ok && partitioned_ledger_ok &&
                    vault_free_ok && sibling_scoping_ok && revoked_ledger_ok &&
                    healed_ledger_ok && verifier_chain_ok && tamper_ok && issuer_chain_ok;
  return pass ? 0 : 1;
}
