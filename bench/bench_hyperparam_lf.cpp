// Reproduces SVI-C1: determination of the latent width l_f by variance-
// ranked pruning. Following the paper: start from an over-provisioned
// l_f = 50, repeatedly remove the lowest-output-variance neuron from both
// encoders' dense layers, retrain briefly, and track the Eq. (3) loss;
// pruning stops when one round costs more than 5% additional loss.
// (Scaled down: smaller dataset and short retraining keep the sweep in CI
// territory; set WAVEKEY_BENCH_SCALE > 1 for a deeper run.)

#include "bench/common.hpp"
#include "core/dataset.hpp"
#include "core/encoders.hpp"

using namespace wavekey;

int main() {
  bench::print_header("l_f determination by variance-ranked pruning",
                      "WaveKey (ICDCS'24) SVI-C1");

  core::DatasetConfig dc;
  dc.volunteers = 6;
  dc.devices = 2;
  dc.gestures_per_pair = 3;
  dc.windows_per_gesture = 6;
  const core::WaveKeyDataset dataset = core::WaveKeyDataset::generate(dc);

  core::TrainConfig tc;
  tc.epochs = std::max<std::size_t>(4, static_cast<std::size_t>(10 * bench::scale()));
  tc.verbose = false;

  std::printf("dataset: %zu samples; initial training %zu epochs, %zu-epoch retrains\n\n",
              dataset.size(), tc.epochs, std::max<std::size_t>(2, tc.epochs / 4));

  const std::size_t initial_lf = 50;
  Rng rng(4242);
  core::EncoderPair encoders(initial_lf, rng);
  encoders.train(dataset, tc);
  core::LossBreakdown loss = encoders.evaluate(dataset, tc.lambda);

  std::printf(" l_f | loss (Eq. 3) | change\n");
  std::printf("-----+--------------+--------\n");
  std::printf("  %2zu |   %8.4f   |   --\n", encoders.latent_dim(), loss.total());

  core::TrainConfig retrain = tc;
  retrain.epochs = std::max<std::size_t>(2, tc.epochs / 4);

  double prev_total = loss.total();
  while (encoders.latent_dim() > 2) {
    // The paper removes two neurons per round (one from each encoder); our
    // latent is shared, so one latent unit per round is the same surgery.
    (void)encoders.prune_lowest_variance_unit(dataset);
    encoders.train(dataset, retrain);
    loss = encoders.evaluate(dataset, tc.lambda);
    const double change = (loss.total() - prev_total) / prev_total;
    std::printf("  %2zu |   %8.4f   | %+5.1f%%%s\n", encoders.latent_dim(), loss.total(),
                100.0 * change, change > 0.05 ? "  <- stop (paper rule: +5%)" : "");
    if (change > 0.05) break;
    prev_total = loss.total();
  }

  std::printf("\npaper: pruning from l_f = 50 settles at l_f = 12; the loss stays flat\n");
  std::printf("until the latent is squeezed below the gesture's intrinsic dimension,\n");
  std::printf("then rises sharply -- the knee selects l_f.\n");
  return 0;
}
