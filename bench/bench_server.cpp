// Access-control server soak (DESIGN.md §9): end-to-end serving throughput
// of server::AccessServer behind a real pairing handoff. Phase 1 runs
// core::PairingEngine over a few sessions and streams the established keys
// into the vault via on_established (tau accounting included — violations
// must stay zero). Phase 2 replays a deterministic request mix against a
// fresh server per thread count: valid grants, byte-exact replays, revoked /
// expired / stale-epoch / bad-MAC probes, and an over-budget tenant — so
// every rejection class has a closed-form expected count and the bench can
// assert the full ledger, not just sample it. A separate overload burst
// demonstrates load shedding, and a vault sweep reports authorize/s vs
// shard count at fixed concurrency.
//
// Each granted request spends io_wait_ms of emulated actuation I/O (door
// strike / reader round-trip) parked in the event-loop timer wheel — the
// request coroutine suspends, the worker moves on. In-flight waits
// therefore overlap regardless of the thread count (even one worker parks
// thousands of grants), which the exit code asserts as an I/O overlap
// factor (granted x io_wait / wall) instead of the old thread-scaling
// ratio the blocking design needed. Verify latency percentiles (parse +
// HMAC + vault, no I/O, p50..p99.9) are reported separately, and a
// dedicated async burst proves >= 10k concurrently parked grants on 4
// threads.
//
// Exit code asserts: per-point ledger exact (hence zero accepted replays
// and zero double-grants), zero tau violations, shed burst actually sheds,
// I/O overlap factor >= 2.5 at every point (when io_wait > 0), and the
// async burst's 10k-in-flight floor.
//
// Knobs: WAVEKEY_BENCH_SCALE scales sessions per point (default 1.0);
// WAVEKEY_BENCH_THREADS is a comma-separated list (default "1,2,4,8");
// WAVEKEY_SERVER_IO_WAIT_MS overrides the emulated actuation wait.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/config.hpp"
#include "core/pairing_engine.hpp"
#include "core/seed_quantizer.hpp"
#include "crypto/drbg.hpp"
#include "numeric/rng.hpp"
#include "runtime/thread_pool.hpp"
#include "server/access_server.hpp"

using namespace wavekey;
using namespace wavekey::server;

namespace {

int main_sessions() {
  double scale = 1.0;
  if (const char* env = std::getenv("WAVEKEY_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) scale = s;
  }
  const int n = static_cast<int>(64 * scale);
  return n < 8 ? 8 : n;
}

std::vector<std::size_t> thread_counts() {
  std::vector<std::size_t> counts;
  if (const char* env = std::getenv("WAVEKEY_BENCH_THREADS")) {
    std::string spec(env);
    std::size_t pos = 0;
    while (pos < spec.size()) {
      const std::size_t comma = spec.find(',', pos);
      const std::string tok = spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
      const long v = std::strtol(tok.c_str(), nullptr, 10);
      if (v > 0) counts.push_back(static_cast<std::size_t>(v));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  if (counts.empty()) counts = {1, 2, 4, 8};
  return counts;
}

double io_wait_s() {
  if (const char* env = std::getenv("WAVEKEY_SERVER_IO_WAIT_MS")) {
    const double ms = std::atof(env);
    if (ms >= 0.0) return ms / 1000.0;
  }
  return 0.002;  // ~one door-strike / reader actuation round-trip
}

double percentile_us(std::vector<double> values_s, double p) {
  if (values_s.empty()) return 0.0;
  std::sort(values_s.begin(), values_s.end());
  const double rank = p * static_cast<double>(values_s.size());
  std::size_t idx = static_cast<std::size_t>(rank);
  if (idx >= values_s.size()) idx = values_s.size() - 1;
  return values_s[idx] * 1e6;
}

std::array<std::uint8_t, kNonceBytes> nonce_from(std::uint64_t v) {
  std::array<std::uint8_t, kNonceBytes> nonce{};
  for (std::size_t i = 0; i < nonce.size(); ++i)
    nonce[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return nonce;
}

SessionKey random_session_key(crypto::Drbg& rng) {
  SessionKey key{};
  rng.random_bytes(key);
  return key;
}

/// Thread-safe aggregation of completion callbacks.
struct Collector {
  std::mutex mutex;
  std::vector<double> granted_verify_s;
  std::uint64_t counts[kAccessStatusCount] = {};

  AccessServer::Callback recorder() {
    return [this](const AccessOutcome& outcome) {
      std::lock_guard<std::mutex> lock(mutex);
      counts[static_cast<std::size_t>(outcome.status)] += 1;
      if (outcome.status == AccessStatus::kGranted) granted_verify_s.push_back(outcome.verify_s);
    };
  }
  std::uint64_t count(AccessStatus status) const {
    return counts[static_cast<std::size_t>(status)];
  }
};

/// Closed-form expected outcome counts for one soak point.
struct Ledger {
  std::uint64_t granted = 0;
  std::uint64_t replay = 0;
  std::uint64_t revoked = 0;
  std::uint64_t expired = 0;
  std::uint64_t stale = 0;
  std::uint64_t bad_mac = 0;
  std::uint64_t rate_limited = 0;
};

struct Point {
  std::size_t threads = 0;
  std::size_t shards = 0;
  double wall_s = 0.0;
  double grants_per_sec = 0.0;
  double io_overlap = 0.0;  ///< granted * io_wait / wall: >1 proves parked waits overlap
  double p50_verify_us = 0.0, p95_verify_us = 0.0, p99_verify_us = 0.0;
  double p999_verify_us = 0.0;
  AccessServerStats stats;
  std::uint64_t accepted_replays = 0;  ///< grants above the expected ledger
  bool ledger_ok = false;
};

constexpr int kRounds = 12;
constexpr std::size_t kShards = 8;
constexpr double kBurst = 32.0;  ///< admission burst (abuser's entire budget)

/// Runs one soak point: `sessions` main sessions (the first `paired.size()`
/// keyed from the pairing handoff) plus dedicated revoked / expired /
/// stale / bad-MAC / abuser sessions, on a fresh server.
Point run_point(std::size_t threads, int sessions, const std::vector<SessionKey>& paired) {
  AccessServerConfig config;
  config.threads = threads;
  config.io_wait_s = io_wait_s();
  config.vault.shards = kShards;
  config.vault.capacity = static_cast<std::size_t>(sessions) + 64 + kRounds;
  config.vault.ttl_s = 3600.0;
  config.vault.replay_window_bits = 512;  // out-of-order across workers
  config.admission.rate_per_s = 1e-9;     // no refill: burst is the budget
  config.admission.burst = kBurst;
  config.admission.max_tenants = static_cast<std::size_t>(sessions) + 16;
  // The ledger assumes nothing sheds: hold the whole deterministic flood.
  config.queue_capacity = static_cast<std::size_t>(sessions) * kRounds * 2 + 256;

  AccessServer server(config);
  crypto::Drbg key_rng(0xC0FFEEull);
  std::vector<SessionKey> keys(static_cast<std::size_t>(sessions));
  for (int id = 0; id < sessions; ++id) {
    keys[static_cast<std::size_t>(id)] = static_cast<std::size_t>(id) < paired.size()
                                             ? paired[static_cast<std::size_t>(id)]
                                             : random_session_key(key_rng);
    server.vault().install(static_cast<std::uint64_t>(id), keys[static_cast<std::size_t>(id)],
                           server.now_s());
  }

  // Dedicated error-class sessions, ids disjoint from the main range.
  const std::uint64_t kRevokedId = 1u << 20;
  const std::uint64_t kStaleId = kRevokedId + 1;
  const std::uint64_t kBadMacId = kRevokedId + 2;
  const std::uint64_t kAbuserId = kRevokedId + 3;
  const std::uint64_t kExpiredBase = kRevokedId + 100;
  const SessionKey revoked_key = random_session_key(key_rng);
  const SessionKey stale_key = random_session_key(key_rng);
  const SessionKey bad_mac_key = random_session_key(key_rng);
  const SessionKey abuser_key = random_session_key(key_rng);
  server.vault().install(kRevokedId, revoked_key, server.now_s());
  server.vault().revoke(kRevokedId);
  server.vault().install(kStaleId, stale_key, server.now_s());
  server.vault().rotate(kStaleId, server.now_s());  // epoch-0 MACs now stale
  server.vault().install(kBadMacId, bad_mac_key, server.now_s());
  server.vault().install(kAbuserId, abuser_key, server.now_s());

  Ledger expected;
  Collector collector;
  std::uint64_t tag = 0;
  std::uint64_t submit_index = 0;
  const auto t0 = std::chrono::steady_clock::now();

  for (int round = 1; round <= kRounds; ++round) {
    const auto counter = static_cast<std::uint64_t>(round);
    for (int id = 0; id < sessions; ++id) {
      const auto sid = static_cast<std::uint64_t>(id);
      const AccessRequest req = make_access_request(
          sid, 0, counter, nonce_from(counter), {0xAC, static_cast<std::uint8_t>(id)},
          keys[static_cast<std::size_t>(id)]);
      const protocol::Bytes wire = req.serialize();
      server.submit(++tag, /*tenant=*/sid, wire, collector.recorder());
      expected.granted += 1;
      // Every 8th frame is re-sent byte for byte: exactly one of the pair
      // may be granted, the other must be a replay rejection.
      if (submit_index++ % 8 == 0) {
        server.submit(++tag, sid, wire, collector.recorder());
        expected.replay += 1;
      }
    }
    // One probe per error class per round, each with its own tenant.
    server.submit(++tag, kRevokedId,
                  make_access_request(kRevokedId, 0, counter, nonce_from(counter), {},
                                      revoked_key)
                      .serialize(),
                  collector.recorder());
    expected.revoked += 1;

    const std::uint64_t expired_id = kExpiredBase + counter;
    const SessionKey expired_key = random_session_key(key_rng);
    // Backdated install: already past its TTL when the probe is served.
    server.vault().install(expired_id, expired_key,
                           server.now_s() - config.vault.ttl_s - 1.0);
    server.submit(++tag, expired_id,
                  make_access_request(expired_id, 0, 1, nonce_from(1), {}, expired_key)
                      .serialize(),
                  collector.recorder());
    expected.expired += 1;

    server.submit(++tag, kStaleId,
                  make_access_request(kStaleId, 0, counter, nonce_from(counter), {}, stale_key)
                      .serialize(),
                  collector.recorder());
    expected.stale += 1;

    AccessRequest tampered = make_access_request(kBadMacId, 0, counter, nonce_from(counter),
                                                 {0xBB}, bad_mac_key);
    tampered.payload[0] ^= 0x01;  // MAC no longer covers the payload
    server.submit(++tag, kBadMacId, tampered.serialize(), collector.recorder());
    expected.bad_mac += 1;
  }

  // Over-budget tenant: kBurst requests fit the bucket (all granted),
  // kRounds more are rate-limited before touching the queue.
  for (std::uint64_t c = 1; c <= static_cast<std::uint64_t>(kBurst) + kRounds; ++c) {
    server.submit(++tag, kAbuserId,
                  make_access_request(kAbuserId, 0, c, nonce_from(c), {}, abuser_key)
                      .serialize(),
                  collector.recorder());
  }
  expected.granted += static_cast<std::uint64_t>(kBurst);
  expected.rate_limited += kRounds;

  server.finish();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  Point point;
  point.threads = threads;
  point.shards = kShards;
  point.wall_s = wall;
  point.stats = server.stats();
  point.grants_per_sec = static_cast<double>(point.stats.granted) / wall;
  point.io_overlap =
      wall > 0.0 ? static_cast<double>(point.stats.granted) * io_wait_s() / wall : 0.0;
  point.p50_verify_us = percentile_us(collector.granted_verify_s, 0.50);
  point.p95_verify_us = percentile_us(collector.granted_verify_s, 0.95);
  point.p99_verify_us = percentile_us(collector.granted_verify_s, 0.99);
  point.p999_verify_us = percentile_us(collector.granted_verify_s, 0.999);
  point.accepted_replays =
      point.stats.granted > expected.granted ? point.stats.granted - expected.granted : 0;
  point.ledger_ok = point.stats.granted == expected.granted &&
                    point.stats.replay_rejected == expected.replay &&
                    point.stats.revoked == expected.revoked &&
                    point.stats.expired == expected.expired &&
                    point.stats.stale_epoch == expected.stale &&
                    point.stats.bad_mac == expected.bad_mac &&
                    point.stats.rate_limited == expected.rate_limited &&
                    point.stats.shed == 0 && point.stats.malformed == 0;
  return point;
}

/// Overload burst against a deliberately tiny server: proves full queues
/// degrade into immediate typed kShed rejects, not blocking.
struct ShedBurst {
  std::uint64_t submitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t granted = 0;
};

ShedBurst run_shed_burst() {
  AccessServerConfig config;
  config.threads = 1;
  config.queue_capacity = 2;
  config.io_wait_s = 0.02;  // worker holds each grant for 20 ms
  config.admission.burst = 1e6;
  AccessServer server(config);
  crypto::Drbg rng(7);
  const SessionKey key = random_session_key(rng);
  server.vault().install(1, key, server.now_s());

  ShedBurst burst;
  burst.submitted = 32;
  for (std::uint64_t c = 1; c <= burst.submitted; ++c)
    server.submit(c, 1, make_access_request(1, 0, c, nonce_from(c), {}, key).serialize(),
                  nullptr);
  server.finish();
  const AccessServerStats stats = server.stats();
  burst.shed = stats.shed;
  burst.granted = stats.granted;
  return burst;
}

/// Coroutine-concurrency burst (the tentpole gate): 12k grants with 250 ms
/// of actuation I/O each, on 4 event-loop workers. A parked grant holds no
/// worker — its frame sits in the timer wheel — so the whole flood suspends
/// concurrently and the server's own high-water marks (peak_in_flight /
/// peak_suspended, maintained under the stats lock) prove >= 10k in-flight
/// grants on 4 threads. The burst is deliberately NOT scaled by
/// WAVEKEY_BENCH_SCALE: the 10k floor is the acceptance criterion.
struct AsyncBurst {
  std::size_t threads = 4;
  std::uint64_t submitted = 0;
  std::uint64_t granted = 0;
  std::uint64_t shed = 0;
  std::uint64_t peak_in_flight = 0;
  std::uint64_t peak_suspended = 0;
  double wall_s = 0.0;
  double io_wait_ms = 0.0;
  double p50_verify_us = 0.0;
  double p999_verify_us = 0.0;
};

AsyncBurst run_async_burst() {
  constexpr std::uint64_t kGrants = 12000;
  constexpr std::uint64_t kSessions = 64;
  AsyncBurst burst;
  burst.submitted = kGrants;
  burst.io_wait_ms = 250.0;

  AccessServerConfig config;
  config.threads = burst.threads;
  config.queue_capacity = kGrants + 64;  // admission window holds the flood
  config.io_wait_s = burst.io_wait_ms / 1000.0;
  config.vault.capacity = kSessions * 2;
  config.vault.ttl_s = 3600.0;
  config.vault.replay_window_bits = 512;
  config.admission.rate_per_s = 1e-9;
  config.admission.burst = static_cast<double>(kGrants);
  config.admission.max_tenants = kSessions + 8;

  AccessServer server(config);
  crypto::Drbg rng(0xA51Cull);
  std::vector<SessionKey> keys(kSessions);
  for (std::uint64_t sid = 0; sid < kSessions; ++sid) {
    keys[sid] = random_session_key(rng);
    server.vault().install(sid, keys[sid], server.now_s());
  }

  Collector collector;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < kGrants; ++i) {
    const std::uint64_t sid = i % kSessions;
    const std::uint64_t counter = 1 + i / kSessions;
    server.submit(i, sid,
                  make_access_request(sid, 0, counter, nonce_from(counter), {},
                                      keys[sid])
                      .serialize(),
                  collector.recorder());
  }
  server.finish();
  burst.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const AccessServerStats stats = server.stats();
  burst.granted = stats.granted;
  burst.shed = stats.shed;
  burst.peak_in_flight = stats.peak_in_flight;
  burst.peak_suspended = stats.peak_suspended;
  burst.p50_verify_us = percentile_us(collector.granted_verify_s, 0.50);
  burst.p999_verify_us = percentile_us(collector.granted_verify_s, 0.999);
  return burst;
}

/// Direct vault hammering at fixed concurrency: authorize/s vs shard count
/// (informational — isolates shard-lock contention from the serving path).
double vault_authorizes_per_sec(std::size_t shards, int sessions, int ops_per_thread) {
  VaultConfig config;
  config.shards = shards;
  config.capacity = static_cast<std::size_t>(sessions) * 2;
  config.ttl_s = 3600.0;
  config.replay_window_bits = 4096;
  KeyVault vault(config);
  crypto::Drbg rng(11);
  std::vector<SessionKey> keys(static_cast<std::size_t>(sessions));
  for (int id = 0; id < sessions; ++id) {
    keys[static_cast<std::size_t>(id)] = random_session_key(rng);
    vault.install(static_cast<std::uint64_t>(id), keys[static_cast<std::size_t>(id)], 0.0);
  }

  constexpr std::size_t kThreads = 4;
  std::atomic<std::uint64_t> failures{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int op = 0; op < ops_per_thread; ++op) {
        const auto id = static_cast<std::uint64_t>((t * 131 + static_cast<std::size_t>(op)) %
                                                   static_cast<std::size_t>(sessions));
        const std::uint64_t counter = 1 + t * static_cast<std::uint64_t>(ops_per_thread) +
                                      static_cast<std::uint64_t>(op);
        const AccessRequest req = make_access_request(
            id, 0, counter, nonce_from(counter), {}, keys[static_cast<std::size_t>(id)]);
        if (vault.authorize(req, req.mac_input(), 1.0, nullptr) != AccessStatus::kGranted)
          failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& w : workers) w.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  if (failures.load() != 0) return -1.0;  // surfaces as an absurd JSON value
  return static_cast<double>(kThreads) * ops_per_thread / wall;
}

}  // namespace

int main() {
  const int sessions = main_sessions();
  const std::vector<std::size_t> counts = thread_counts();

  // Phase 1 — pairing handoff: establish a few sessions through the real
  // pairing engine, streaming keys out via on_established.
  const core::WaveKeyConfig wk;
  const core::SeedQuantizer quantizer = core::SeedQuantizer::from_normal(wk);
  std::vector<SessionKey> paired;
  int tau_violations = 0;
  {
    std::mutex paired_mutex;
    std::vector<std::pair<std::uint64_t, SessionKey>> handoff;
    core::PairingEngineConfig engine_config;
    engine_config.threads = 2;
    engine_config.session.tau_s = wk.tau_s;
    engine_config.session.gesture_window_s = wk.gesture_window_s;
    engine_config.session.params.key_bits = wk.key_bits;
    engine_config.session.params.eta = wk.eta;
    engine_config.on_established = [&](std::uint64_t id, const BitVec& key) {
      const std::vector<std::uint8_t> bytes = key.slice(0, 256).to_bytes();
      SessionKey sk{};
      std::copy(bytes.begin(), bytes.end(), sk.begin());
      std::lock_guard<std::mutex> lock(paired_mutex);
      handoff.emplace_back(id, sk);
    };
    core::PairingEngine engine(quantizer, engine_config);
    const int paired_sessions = std::min(sessions, 8);
    for (int id = 0; id < paired_sessions; ++id) {
      Rng rng(static_cast<std::uint64_t>(id) * 6151 + 29);
      core::PairingRequest req;
      req.id = static_cast<std::uint64_t>(id);
      req.rng_seed = static_cast<std::uint64_t>(id) * 7919 + 17;
      req.mobile_latent.resize(quantizer.latent_dim());
      req.server_latent.resize(quantizer.latent_dim());
      for (std::size_t d = 0; d < quantizer.latent_dim(); ++d) {
        req.mobile_latent[d] = rng.normal();
        req.server_latent[d] = req.mobile_latent[d] + rng.normal(0.0, 0.03);
      }
      engine.submit(std::move(req));
    }
    for (const core::PairingReport& report : engine.finish())
      if (report.tau_violation) ++tau_violations;
    std::sort(handoff.begin(), handoff.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (const auto& [id, key] : handoff) paired.push_back(key);
  }

  std::printf("{\n  \"bench\": \"server\",\n  \"sessions_per_point\": %d,\n"
              "  \"rounds\": %d,\n  \"io_wait_ms\": %.2f,\n  \"hardware_threads\": %zu,\n"
              "  \"vault_shards\": %zu,\n  \"paired_sessions\": %zu,\n"
              "  \"tau_budget_ms\": %.1f,\n  \"points\": [\n",
              sessions, kRounds, io_wait_s() * 1000.0,
              runtime::ThreadPool::hardware_threads(), kShards, paired.size(),
              wk.tau_s * 1000.0);

  std::vector<Point> points;
  bool first = true;
  bool all_ledgers_ok = true;
  for (std::size_t threads : counts) {
    const Point p = run_point(threads, sessions, paired);
    points.push_back(p);
    if (!p.ledger_ok) all_ledgers_ok = false;
    std::printf(
        "%s    {\"threads\": %zu, \"shards\": %zu, \"wall_s\": %.3f, "
        "\"grants_per_sec\": %.2f, \"io_overlap\": %.1f, \"granted\": %llu, "
        "\"replay_rejected\": %llu, "
        "\"expired\": %llu, \"revoked\": %llu, \"stale_epoch\": %llu, \"bad_mac\": %llu, "
        "\"rate_limited\": %llu, \"shed\": %llu, \"malformed\": %llu, "
        "\"accepted_replays\": %llu, \"p50_verify_us\": %.1f, \"p95_verify_us\": %.1f, "
        "\"p99_verify_us\": %.1f, \"p999_verify_us\": %.1f, \"ledger_ok\": %s}",
        first ? "" : ",\n", p.threads, p.shards, p.wall_s, p.grants_per_sec, p.io_overlap,
        static_cast<unsigned long long>(p.stats.granted),
        static_cast<unsigned long long>(p.stats.replay_rejected),
        static_cast<unsigned long long>(p.stats.expired),
        static_cast<unsigned long long>(p.stats.revoked),
        static_cast<unsigned long long>(p.stats.stale_epoch),
        static_cast<unsigned long long>(p.stats.bad_mac),
        static_cast<unsigned long long>(p.stats.rate_limited),
        static_cast<unsigned long long>(p.stats.shed),
        static_cast<unsigned long long>(p.stats.malformed),
        static_cast<unsigned long long>(p.accepted_replays), p.p50_verify_us, p.p95_verify_us,
        p.p99_verify_us, p.p999_verify_us, p.ledger_ok ? "true" : "false");
    first = false;
  }

  // Shard sweep at 4 OS threads (informational).
  const int vault_sessions = std::max(sessions, 16);
  const int ops_per_thread = 400 * std::max(1, sessions / 16);
  std::printf("\n  ],\n  \"vault_scaling\": [\n");
  first = true;
  for (std::size_t shards : {std::size_t{1}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const double rate = vault_authorizes_per_sec(shards, vault_sessions, ops_per_thread);
    std::printf("%s    {\"shards\": %zu, \"authorizes_per_sec\": %.0f}", first ? "" : ",\n",
                shards, rate);
    first = false;
  }

  const ShedBurst burst = run_shed_burst();
  std::printf("\n  ],\n  \"shed_burst\": {\"submitted\": %llu, \"shed\": %llu, "
              "\"granted\": %llu},\n",
              static_cast<unsigned long long>(burst.submitted),
              static_cast<unsigned long long>(burst.shed),
              static_cast<unsigned long long>(burst.granted));

  const AsyncBurst async_burst = run_async_burst();
  std::printf("  \"async_burst\": {\"threads\": %zu, \"submitted\": %llu, "
              "\"granted\": %llu, \"shed\": %llu, \"peak_in_flight\": %llu, "
              "\"peak_suspended\": %llu, \"io_wait_ms\": %.1f, \"wall_s\": %.3f, "
              "\"p50_verify_us\": %.1f, \"p999_verify_us\": %.1f},\n",
              async_burst.threads, static_cast<unsigned long long>(async_burst.submitted),
              static_cast<unsigned long long>(async_burst.granted),
              static_cast<unsigned long long>(async_burst.shed),
              static_cast<unsigned long long>(async_burst.peak_in_flight),
              static_cast<unsigned long long>(async_burst.peak_suspended),
              async_burst.io_wait_ms, async_burst.wall_s, async_burst.p50_verify_us,
              async_burst.p999_verify_us);

  double one_thread = 0.0, four_thread = 0.0;
  for (const Point& p : points) {
    if (p.threads == 1) one_thread = p.grants_per_sec;
    if (p.threads == 4) four_thread = p.grants_per_sec;
  }
  const double speedup = one_thread > 0.0 ? four_thread / one_thread : 0.0;
  std::uint64_t total_accepted_replays = 0;
  for (const Point& p : points) total_accepted_replays += p.accepted_replays;

  std::printf("  \"speedup_4t_over_1t\": %.2f,\n  \"accepted_replays\": %llu,\n"
              "  \"tau_deadline_violations\": %d\n}\n",
              speedup, static_cast<unsigned long long>(total_accepted_replays), tau_violations);

  const bool shed_ok = burst.shed >= 1 && burst.granted + burst.shed == burst.submitted;
  // With coroutine serving, waits park in the timer wheel at EVERY thread
  // count, so the old 4t/1t scaling ratio is structurally ~1. The claim
  // worth gating is the overlap itself: each point must have packed far
  // more emulated I/O than wall time. Moot when the env knob disables the
  // wait.
  bool overlap_ok = true;
  if (io_wait_s() > 0.0)
    for (const Point& p : points) overlap_ok = overlap_ok && p.io_overlap >= 2.5;
  // Coroutine gate: every request granted exactly once, and >= 10k of them
  // provably parked at the same instant on 4 workers.
  const bool async_ok = async_burst.granted == async_burst.submitted &&
                        async_burst.shed == 0 && async_burst.peak_in_flight >= 10000 &&
                        async_burst.peak_suspended >= 10000;
  return (all_ledgers_ok && total_accepted_replays == 0 && tau_violations == 0 && shed_ok &&
          overlap_ok && async_ok)
             ? 0
             : 1;
}
