// Reproduces SVI-F3: key-establishment success across all combinations of
// the four mobile devices and six RFID tags (paper: 24 combinations x 200
// gestures, success between 99% and 100%).

#include "bench/common.hpp"

using namespace wavekey;

int main() {
  bench::print_header("Device-combination sweep -- 4 mobiles x 6 tags",
                      "WaveKey (ICDCS'24) SVI-F3");

  const int n = bench::scaled(16);
  const auto devices = sim::MobileDeviceProfile::standard_devices();
  const auto tags = sim::TagProfile::standard_tags();
  std::printf("%d key establishments per combination\n\n", n);
  std::printf("%-14s", "P_k (%)");
  for (const auto& tag : tags) std::printf("%13s", tag.name.c_str());
  std::printf("\n");

  double min_rate = 100.0, max_rate = 0.0, sum = 0.0;
  int cells = 0;
  for (const auto& device : devices) {
    std::printf("%-14s", device.name.c_str());
    for (const auto& tag : tags) {
      sim::ScenarioConfig sc = bench::default_scenario(0);
      sc.device = device;
      sc.tag = tag;
      const double rate =
          bench::key_establishment_rate(sc, n, 300 + static_cast<std::uint64_t>(cells));
      std::printf("%12.1f%%", rate);
      min_rate = std::min(min_rate, rate);
      max_rate = std::max(max_rate, rate);
      sum += rate;
      ++cells;
    }
    std::printf("\n");
  }
  std::printf("\nmeasured: min=%.1f%%  max=%.1f%%  mean=%.1f%%\n", min_rate, max_rate,
              sum / cells);
  std::printf("paper:    min=99%%  max=100%% across all 24 combinations\n");
  return 0;
}
