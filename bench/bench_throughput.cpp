// Concurrent pairing throughput: sessions/sec and service-latency
// percentiles of core::PairingEngine vs. worker-thread count. Emits a JSON
// curve (one object per thread count) plus the 4-thread-over-1-thread
// speedup and the total count of tau-deadline violations (must stay zero).
//
// Sessions are synthetic — SeedQuantizer::from_normal bins standard-normal
// latents, and the server latent is the mobile latent plus small Gaussian
// noise, so the seed mismatch sits far below eta and every session succeeds
// deterministically; no trained model is needed, keeping the bench CI-cheap.
//
// Each session spends `radio_wait_ms` blocked in emulated radio I/O (BLE
// connection-interval round-trips between the phone and the reader). Worker
// threads overlap those waits, which is what the throughput curve measures;
// it therefore scales with thread count even on a single-core host. Real
// crypto cost is still charged into each session's virtual clock by the
// protocol layer, so CPU contention between concurrent sessions counts
// against the tau window and would surface as tau violations.
//
// Two further sections cover the cross-session batched encoder stage
// (DESIGN.md §11):
//
//  * "encoder_stage" — raw-tensor encode throughput through a shared
//    core::BatchedEncoderService, batched (max_batch = thread count) vs
//    unbatched (max_batch = 1, same service/queue/wake path, so the
//    comparison isolates coalescing) at each thread count. Arms are
//    interleaved across repetitions and the median sessions/sec per arm is
//    reported, damping scheduler noise on shared hosts. Gate: the batched
//    arm must reach >= 2x the unbatched arm at 8 threads.
//  * "batched_integration" — full PairingEngine sessions submitting raw
//    sensor tensors through the service (synthetic_residual_sigma makes the
//    untrained latents reconcilable); the coalescing hold time is charged
//    into each session's virtual clock, and the gate requires zero tau
//    violations and universal success despite that charge.
//
// Knobs: WAVEKEY_BENCH_SCALE scales sessions per point (default 1.0);
// WAVEKEY_BENCH_THREADS is a comma-separated thread-count list (default
// "1,2,4,8"); WAVEKEY_RADIO_WAIT_MS overrides the emulated radio wait.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/batched_encoder.hpp"
#include "core/config.hpp"
#include "core/encoders.hpp"
#include "core/pairing_engine.hpp"
#include "core/seed_quantizer.hpp"
#include "nn/tensor.hpp"
#include "numeric/rng.hpp"
#include "runtime/thread_pool.hpp"

using namespace wavekey;
using namespace wavekey::core;

namespace {

int session_count() {
  double scale = 1.0;
  if (const char* env = std::getenv("WAVEKEY_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) scale = s;
  }
  const int n = static_cast<int>(64 * scale);
  return n < 8 ? 8 : n;
}

std::vector<std::size_t> thread_counts() {
  std::vector<std::size_t> counts;
  if (const char* env = std::getenv("WAVEKEY_BENCH_THREADS")) {
    std::string spec(env);
    std::size_t pos = 0;
    while (pos < spec.size()) {
      const std::size_t comma = spec.find(',', pos);
      const std::string tok = spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
      const long v = std::strtol(tok.c_str(), nullptr, 10);
      if (v > 0) counts.push_back(static_cast<std::size_t>(v));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  if (counts.empty()) counts = {1, 2, 4, 8};
  return counts;
}

double radio_wait_s() {
  if (const char* env = std::getenv("WAVEKEY_RADIO_WAIT_MS")) {
    const double ms = std::atof(env);
    if (ms >= 0.0) return ms / 1000.0;
  }
  return 0.045;  // ~3 BLE connection intervals at 15 ms
}

double percentile_ms(std::vector<double> values_s, double p) {
  if (values_s.empty()) return 0.0;
  std::sort(values_s.begin(), values_s.end());
  const double rank = p * static_cast<double>(values_s.size());
  std::size_t idx = static_cast<std::size_t>(rank);
  if (idx >= values_s.size()) idx = values_s.size() - 1;
  return values_s[idx] * 1000.0;
}

struct Point {
  std::size_t threads = 0;
  double wall_s = 0.0;
  double sessions_per_sec = 0.0;
  double success_rate = 0.0;
  double p50_service_ms = 0.0;
  double p95_service_ms = 0.0;
  double p99_service_ms = 0.0;
  double p999_service_ms = 0.0;
  double p99_critical_ms = 0.0;
  double p999_critical_ms = 0.0;
  int tau_violations = 0;
};

Point run_point(const SeedQuantizer& quantizer, const WaveKeyConfig& wk, std::size_t threads,
                int sessions) {
  PairingEngineConfig config;
  config.threads = threads;
  config.queue_capacity = 32;
  config.radio_wait_s = radio_wait_s();
  config.session.tau_s = wk.tau_s;
  config.session.gesture_window_s = wk.gesture_window_s;
  config.session.params.key_bits = wk.key_bits;
  config.session.params.eta = wk.eta;

  // Same request stream at every thread count: deterministic latents and
  // per-session crypto seeds, so the points differ only in scheduling.
  std::vector<PairingRequest> requests;
  requests.reserve(static_cast<std::size_t>(sessions));
  for (int i = 0; i < sessions; ++i) {
    Rng rng(static_cast<std::uint64_t>(i) * 6151 + 29);
    PairingRequest req;
    req.id = static_cast<std::uint64_t>(i);
    req.rng_seed = static_cast<std::uint64_t>(i) * 7919 + 17;
    req.mobile_latent.resize(quantizer.latent_dim());
    req.server_latent.resize(quantizer.latent_dim());
    for (std::size_t d = 0; d < quantizer.latent_dim(); ++d) {
      req.mobile_latent[d] = rng.normal();
      // Cross-modal residual far below the eta=0.10 correction budget.
      req.server_latent[d] = req.mobile_latent[d] + rng.normal(0.0, 0.03);
    }
    requests.push_back(std::move(req));
  }

  const auto t0 = std::chrono::steady_clock::now();
  PairingEngine engine(quantizer, config);
  for (auto& req : requests) engine.submit(std::move(req));
  const std::vector<PairingReport> reports = engine.finish();
  const double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  Point point;
  point.threads = threads;
  point.wall_s = wall;
  point.sessions_per_sec = static_cast<double>(sessions) / wall;
  std::vector<double> service_s, critical_s;
  int ok = 0;
  for (const PairingReport& r : reports) {
    if (r.success) ++ok;
    if (r.tau_violation) ++point.tau_violations;
    service_s.push_back(r.service_s);
    critical_s.push_back(r.critical_latency_s);
  }
  point.success_rate = static_cast<double>(ok) / static_cast<double>(sessions);
  point.p50_service_ms = percentile_ms(service_s, 0.50);
  point.p95_service_ms = percentile_ms(service_s, 0.95);
  point.p99_service_ms = percentile_ms(service_s, 0.99);
  point.p999_service_ms = percentile_ms(service_s, 0.999);
  point.p99_critical_ms = percentile_ms(critical_s, 0.99);
  point.p999_critical_ms = percentile_ms(critical_s, 0.999);
  return point;
}

// --- encoder-stage batching (DESIGN.md §11) --------------------------------

struct SensorPool {
  std::vector<nn::Tensor> imus;
  std::vector<nn::Tensor> rfs;
};

SensorPool make_sensor_pool(std::size_t count) {
  SensorPool pool;
  Rng rng(0x51D0);
  for (std::size_t i = 0; i < count; ++i) {
    nn::Tensor imu({3, 200}), rf({2, 400});
    for (std::size_t j = 0; j < imu.size(); ++j) imu[j] = static_cast<float>(rng.normal());
    for (std::size_t j = 0; j < rf.size(); ++j) rf[j] = static_cast<float>(rng.normal());
    pool.imus.push_back(std::move(imu));
    pool.rfs.push_back(std::move(rf));
  }
  return pool;
}

/// One timed run of `threads` submitters hammering a shared service; returns
/// sessions/sec. max_batch = 1 is the unbatched arm (every encode leads its
/// own single-sample flush through the identical queue/wake machinery).
double run_encoder_arm(core::EncoderPair& encoders, const SensorPool& pool, std::size_t threads,
                       std::size_t max_batch, int ops_per_thread, double* mean_batch) {
  core::BatchedEncoderConfig config;
  config.max_batch = max_batch;
  config.max_hold_s = 500e-6;
  core::BatchedEncoderService service(encoders, config);
  for (int i = 0; i < 4; ++i) (void)service.encode(pool.imus[0], pool.rfs[0]);  // warm arenas

  // Spawn first, then release every submitter at once: thread-creation cost
  // (milliseconds on a loaded single-core host) stays outside the window.
  // Ops come from a shared pool rather than a fixed per-thread quota: with a
  // quota, threads finish at skewed times and the stragglers' batches can no
  // longer fill, so every tail batch stalls on the hold deadline — a harness
  // artifact, not a property of the coalescing stage under steady load.
  std::atomic<bool> go{false};
  std::atomic<int> next{0};
  const int total_ops = ops_per_thread * static_cast<int>(threads);
  std::vector<std::thread> workers;
  for (std::size_t t = 0; t < threads; ++t)
    workers.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      const std::size_t n = pool.imus.size();
      for (int i; (i = next.fetch_add(1, std::memory_order_relaxed)) < total_ops;) {
        const std::size_t s = static_cast<std::size_t>(i) % n;
        (void)service.encode(pool.imus[s], pool.rfs[s]);
      }
    });
  const auto t0 = std::chrono::steady_clock::now();
  go.store(true, std::memory_order_release);
  for (auto& w : workers) w.join();
  const double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const auto stats = service.stats();
  if (mean_batch)
    *mean_batch = stats.batches > 0
                      ? static_cast<double>(stats.items - 4) / static_cast<double>(stats.batches - 4)
                      : 0.0;
  return static_cast<double>(threads) * ops_per_thread / wall;
}

struct EncoderPoint {
  std::size_t threads = 0;
  std::size_t max_batch = 0;
  double unbatched_sps = 0.0;
  double batched_sps = 0.0;
  double mean_batch = 0.0;
  double speedup = 0.0;
};

EncoderPoint run_encoder_point(core::EncoderPair& encoders, const SensorPool& pool,
                               std::size_t threads, int ops_per_thread) {
  EncoderPoint point;
  point.threads = threads;
  // Batch size tracks concurrency: with N submitters at most N items can
  // coalesce, and a larger cap would only park batches on the hold deadline.
  point.max_batch = std::min<std::size_t>(threads, 16);
  // Interleave the arms (u,b,u,b,...) and score each rep by its *paired*
  // ratio: the two arms of a rep run back-to-back under the same machine
  // load, so a noisy-neighbor stall cancels out of the quotient instead of
  // poisoning whichever arm it landed on. The reported sps pair is taken
  // from the rep whose ratio is the median, keeping the JSON self-consistent
  // (batched_sps / unbatched_sps == speedup exactly).
  constexpr int kReps = 7;
  double u[kReps], b[kReps], mb[kReps], r[kReps];
  for (int rep = 0; rep < kReps; ++rep) {
    mb[rep] = 0.0;
    u[rep] = run_encoder_arm(encoders, pool, threads, 1, ops_per_thread, nullptr);
    b[rep] = run_encoder_arm(encoders, pool, threads, point.max_batch, ops_per_thread, &mb[rep]);
    r[rep] = u[rep] > 0.0 ? b[rep] / u[rep] : 0.0;
  }
  int order[kReps] = {0, 1, 2, 3, 4, 5, 6};
  std::sort(order, order + kReps, [&](int x, int y) { return r[x] < r[y]; });
  const int mid = order[kReps / 2];
  point.unbatched_sps = u[mid];
  point.batched_sps = b[mid];
  point.mean_batch = mb[mid];
  point.speedup = r[mid];
  return point;
}

struct IntegrationResult {
  int sessions = 0;
  int successes = 0;
  int tau_violations = 0;
  int coalesced = 0;        ///< sessions whose encode batch held > 1 item
  double max_hold_ms = 0.0;
  double p99_critical_ms = 0.0;
};

/// Full pairing sessions through engine + service: raw tensors in, keys out,
/// coalescing hold charged against each session's tau budget.
IntegrationResult run_batched_integration(core::EncoderPair& encoders, const SensorPool& pool,
                                          const SeedQuantizer& quantizer, const WaveKeyConfig& wk,
                                          int sessions) {
  core::BatchedEncoderConfig enc_config;
  enc_config.max_batch = 4;
  enc_config.max_hold_s = 500e-6;
  core::BatchedEncoderService service(encoders, enc_config);

  PairingEngineConfig config;
  config.threads = 4;
  config.queue_capacity = 32;
  config.session.tau_s = wk.tau_s;
  config.session.gesture_window_s = wk.gesture_window_s;
  config.session.params.key_bits = wk.key_bits;
  config.session.params.eta = wk.eta;
  config.encoder_service = &service;
  config.synthetic_residual_sigma = 0.03;

  PairingEngine engine(quantizer, config);
  for (int i = 0; i < sessions; ++i) {
    PairingRequest req;
    req.id = static_cast<std::uint64_t>(i);
    req.rng_seed = static_cast<std::uint64_t>(i) * 7919 + 17;
    req.imu_input = pool.imus[static_cast<std::size_t>(i) % pool.imus.size()];
    req.rf_input = pool.rfs[static_cast<std::size_t>(i) % pool.rfs.size()];
    engine.submit(std::move(req));
  }
  const std::vector<PairingReport> reports = engine.finish();

  IntegrationResult result;
  result.sessions = sessions;
  std::vector<double> critical_s;
  for (const PairingReport& r : reports) {
    if (r.success) ++result.successes;
    if (r.tau_violation) ++result.tau_violations;
    if (r.encode_batch > 1) ++result.coalesced;
    result.max_hold_ms = std::max(result.max_hold_ms, r.encode_hold_s * 1000.0);
    critical_s.push_back(r.critical_latency_s);
  }
  result.p99_critical_ms = percentile_ms(critical_s, 0.99);
  return result;
}

}  // namespace

int main() {
  const WaveKeyConfig wk;
  const SeedQuantizer quantizer = SeedQuantizer::from_normal(wk);
  const int sessions = session_count();
  const std::vector<std::size_t> counts = thread_counts();

  std::printf("{\n  \"bench\": \"throughput\",\n  \"sessions_per_point\": %d,\n"
              "  \"radio_wait_ms\": %.1f,\n  \"hardware_threads\": %zu,\n"
              "  \"tau_budget_ms\": %.1f,\n  \"points\": [\n",
              sessions, radio_wait_s() * 1000.0, runtime::ThreadPool::hardware_threads(),
              wk.tau_s * 1000.0);

  std::vector<Point> points;
  bool first = true;
  int total_violations = 0;
  bool all_succeeded = true;
  bool p99_within_tau = true;
  for (std::size_t threads : counts) {
    const Point p = run_point(quantizer, wk, threads, sessions);
    points.push_back(p);
    total_violations += p.tau_violations;
    if (p.success_rate < 1.0) all_succeeded = false;
    if (p.p99_critical_ms > wk.tau_s * 1000.0) p99_within_tau = false;
    std::printf("%s    {\"threads\": %zu, \"wall_s\": %.3f, \"sessions_per_sec\": %.2f, "
                "\"success_rate\": %.4f, \"p50_service_ms\": %.2f, \"p95_service_ms\": %.2f, "
                "\"p99_service_ms\": %.2f, \"p999_service_ms\": %.2f, "
                "\"p99_critical_ms\": %.2f, \"p999_critical_ms\": %.2f, "
                "\"tau_violations\": %d}",
                first ? "" : ",\n", p.threads, p.wall_s, p.sessions_per_sec, p.success_rate,
                p.p50_service_ms, p.p95_service_ms, p.p99_service_ms, p.p999_service_ms,
                p.p99_critical_ms, p.p999_critical_ms, p.tau_violations);
    first = false;
  }

  // --- encoder-stage batching curve ----------------------------------------
  Rng enc_rng(6);
  core::EncoderPair encoders(wk.latent_dim, enc_rng);
  const SensorPool pool = make_sensor_pool(8);
  // Encoder ops are ~50 us each, far cheaper than full sessions: a floor of
  // 240 per thread keeps warmup transients amortized even at the CI scale
  // factor, where `sessions` alone would be too short a run.
  const int enc_ops = std::max(240, sessions);

  std::printf("\n  ],\n  \"encoder_stage\": {\n    \"ops_per_thread\": %d,\n"
              "    \"max_hold_us\": 500,\n    \"points\": [\n", enc_ops);
  double batched_speedup_8t = 0.0;
  bool have_8t = false;
  first = true;
  for (std::size_t threads : counts) {
    const EncoderPoint p = run_encoder_point(encoders, pool, threads, enc_ops);
    if (p.threads == 8) {
      batched_speedup_8t = p.speedup;
      have_8t = true;
    }
    std::printf("%s      {\"threads\": %zu, \"max_batch\": %zu, \"unbatched_sps\": %.0f, "
                "\"batched_sps\": %.0f, \"mean_batch\": %.2f, \"speedup\": %.2f}",
                first ? "" : ",\n", p.threads, p.max_batch, p.unbatched_sps, p.batched_sps,
                p.mean_batch, p.speedup);
    first = false;
  }

  // --- integrated engine + service sessions --------------------------------
  const IntegrationResult integ =
      run_batched_integration(encoders, pool, quantizer, wk, sessions);
  std::printf("\n    ],\n    \"speedup_batched_8t\": %.2f\n  },\n"
              "  \"batched_integration\": {\"sessions\": %d, \"successes\": %d, "
              "\"tau_violations\": %d, \"coalesced\": %d, \"max_hold_ms\": %.3f, "
              "\"p99_critical_ms\": %.2f},\n",
              batched_speedup_8t, integ.sessions, integ.successes, integ.tau_violations,
              integ.coalesced, integ.max_hold_ms, integ.p99_critical_ms);

  double one_thread = 0.0, four_thread = 0.0;
  for (const Point& p : points) {
    if (p.threads == 1) one_thread = p.sessions_per_sec;
    if (p.threads == 4) four_thread = p.sessions_per_sec;
  }
  const double speedup = one_thread > 0.0 ? four_thread / one_thread : 0.0;

  std::printf("  \"speedup_4t_over_1t\": %.2f,\n"
              "  \"tau_deadline_violations\": %d\n}\n",
              speedup, total_violations + integ.tau_violations);

  const bool batch_ok = !have_8t || batched_speedup_8t >= 2.0;
  const bool integ_ok = integ.successes == integ.sessions && integ.tau_violations == 0 &&
                        integ.p99_critical_ms <= wk.tau_s * 1000.0;
  return (all_succeeded && p99_within_tau && total_violations == 0 && batch_ok && integ_ok)
             ? 0
             : 1;
}
