// Concurrent pairing throughput: sessions/sec and service-latency
// percentiles of core::PairingEngine vs. worker-thread count. Emits a JSON
// curve (one object per thread count) plus the 4-thread-over-1-thread
// speedup and the total count of tau-deadline violations (must stay zero).
//
// Sessions are synthetic — SeedQuantizer::from_normal bins standard-normal
// latents, and the server latent is the mobile latent plus small Gaussian
// noise, so the seed mismatch sits far below eta and every session succeeds
// deterministically; no trained model is needed, keeping the bench CI-cheap.
//
// Each session spends `radio_wait_ms` blocked in emulated radio I/O (BLE
// connection-interval round-trips between the phone and the reader). Worker
// threads overlap those waits, which is what the throughput curve measures;
// it therefore scales with thread count even on a single-core host. Real
// crypto cost is still charged into each session's virtual clock by the
// protocol layer, so CPU contention between concurrent sessions counts
// against the tau window and would surface as tau violations.
//
// Knobs: WAVEKEY_BENCH_SCALE scales sessions per point (default 1.0);
// WAVEKEY_BENCH_THREADS is a comma-separated thread-count list (default
// "1,2,4,8"); WAVEKEY_RADIO_WAIT_MS overrides the emulated radio wait.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/pairing_engine.hpp"
#include "core/seed_quantizer.hpp"
#include "numeric/rng.hpp"
#include "runtime/thread_pool.hpp"

using namespace wavekey;
using namespace wavekey::core;

namespace {

int session_count() {
  double scale = 1.0;
  if (const char* env = std::getenv("WAVEKEY_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) scale = s;
  }
  const int n = static_cast<int>(64 * scale);
  return n < 8 ? 8 : n;
}

std::vector<std::size_t> thread_counts() {
  std::vector<std::size_t> counts;
  if (const char* env = std::getenv("WAVEKEY_BENCH_THREADS")) {
    std::string spec(env);
    std::size_t pos = 0;
    while (pos < spec.size()) {
      const std::size_t comma = spec.find(',', pos);
      const std::string tok = spec.substr(pos, comma == std::string::npos ? comma : comma - pos);
      const long v = std::strtol(tok.c_str(), nullptr, 10);
      if (v > 0) counts.push_back(static_cast<std::size_t>(v));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  if (counts.empty()) counts = {1, 2, 4, 8};
  return counts;
}

double radio_wait_s() {
  if (const char* env = std::getenv("WAVEKEY_RADIO_WAIT_MS")) {
    const double ms = std::atof(env);
    if (ms >= 0.0) return ms / 1000.0;
  }
  return 0.045;  // ~3 BLE connection intervals at 15 ms
}

double percentile_ms(std::vector<double> values_s, double p) {
  if (values_s.empty()) return 0.0;
  std::sort(values_s.begin(), values_s.end());
  const double rank = p * static_cast<double>(values_s.size());
  std::size_t idx = static_cast<std::size_t>(rank);
  if (idx >= values_s.size()) idx = values_s.size() - 1;
  return values_s[idx] * 1000.0;
}

struct Point {
  std::size_t threads = 0;
  double wall_s = 0.0;
  double sessions_per_sec = 0.0;
  double success_rate = 0.0;
  double p50_service_ms = 0.0;
  double p95_service_ms = 0.0;
  double p99_service_ms = 0.0;
  double p99_critical_ms = 0.0;
  int tau_violations = 0;
};

Point run_point(const SeedQuantizer& quantizer, const WaveKeyConfig& wk, std::size_t threads,
                int sessions) {
  PairingEngineConfig config;
  config.threads = threads;
  config.queue_capacity = 32;
  config.radio_wait_s = radio_wait_s();
  config.session.tau_s = wk.tau_s;
  config.session.gesture_window_s = wk.gesture_window_s;
  config.session.params.key_bits = wk.key_bits;
  config.session.params.eta = wk.eta;

  // Same request stream at every thread count: deterministic latents and
  // per-session crypto seeds, so the points differ only in scheduling.
  std::vector<PairingRequest> requests;
  requests.reserve(static_cast<std::size_t>(sessions));
  for (int i = 0; i < sessions; ++i) {
    Rng rng(static_cast<std::uint64_t>(i) * 6151 + 29);
    PairingRequest req;
    req.id = static_cast<std::uint64_t>(i);
    req.rng_seed = static_cast<std::uint64_t>(i) * 7919 + 17;
    req.mobile_latent.resize(quantizer.latent_dim());
    req.server_latent.resize(quantizer.latent_dim());
    for (std::size_t d = 0; d < quantizer.latent_dim(); ++d) {
      req.mobile_latent[d] = rng.normal();
      // Cross-modal residual far below the eta=0.10 correction budget.
      req.server_latent[d] = req.mobile_latent[d] + rng.normal(0.0, 0.03);
    }
    requests.push_back(std::move(req));
  }

  const auto t0 = std::chrono::steady_clock::now();
  PairingEngine engine(quantizer, config);
  for (auto& req : requests) engine.submit(std::move(req));
  const std::vector<PairingReport> reports = engine.finish();
  const double wall = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  Point point;
  point.threads = threads;
  point.wall_s = wall;
  point.sessions_per_sec = static_cast<double>(sessions) / wall;
  std::vector<double> service_s, critical_s;
  int ok = 0;
  for (const PairingReport& r : reports) {
    if (r.success) ++ok;
    if (r.tau_violation) ++point.tau_violations;
    service_s.push_back(r.service_s);
    critical_s.push_back(r.critical_latency_s);
  }
  point.success_rate = static_cast<double>(ok) / static_cast<double>(sessions);
  point.p50_service_ms = percentile_ms(service_s, 0.50);
  point.p95_service_ms = percentile_ms(service_s, 0.95);
  point.p99_service_ms = percentile_ms(service_s, 0.99);
  point.p99_critical_ms = percentile_ms(critical_s, 0.99);
  return point;
}

}  // namespace

int main() {
  const WaveKeyConfig wk;
  const SeedQuantizer quantizer = SeedQuantizer::from_normal(wk);
  const int sessions = session_count();
  const std::vector<std::size_t> counts = thread_counts();

  std::printf("{\n  \"bench\": \"throughput\",\n  \"sessions_per_point\": %d,\n"
              "  \"radio_wait_ms\": %.1f,\n  \"hardware_threads\": %zu,\n"
              "  \"tau_budget_ms\": %.1f,\n  \"points\": [\n",
              sessions, radio_wait_s() * 1000.0, runtime::ThreadPool::hardware_threads(),
              wk.tau_s * 1000.0);

  std::vector<Point> points;
  bool first = true;
  int total_violations = 0;
  bool all_succeeded = true;
  bool p99_within_tau = true;
  for (std::size_t threads : counts) {
    const Point p = run_point(quantizer, wk, threads, sessions);
    points.push_back(p);
    total_violations += p.tau_violations;
    if (p.success_rate < 1.0) all_succeeded = false;
    if (p.p99_critical_ms > wk.tau_s * 1000.0) p99_within_tau = false;
    std::printf("%s    {\"threads\": %zu, \"wall_s\": %.3f, \"sessions_per_sec\": %.2f, "
                "\"success_rate\": %.4f, \"p50_service_ms\": %.2f, \"p95_service_ms\": %.2f, "
                "\"p99_service_ms\": %.2f, \"p99_critical_ms\": %.2f, \"tau_violations\": %d}",
                first ? "" : ",\n", p.threads, p.wall_s, p.sessions_per_sec, p.success_rate,
                p.p50_service_ms, p.p95_service_ms, p.p99_service_ms, p.p99_critical_ms,
                p.tau_violations);
    first = false;
  }

  double one_thread = 0.0, four_thread = 0.0;
  for (const Point& p : points) {
    if (p.threads == 1) one_thread = p.sessions_per_sec;
    if (p.threads == 4) four_thread = p.sessions_per_sec;
  }
  const double speedup = one_thread > 0.0 ? four_thread / one_thread : 0.0;

  std::printf("\n  ],\n  \"speedup_4t_over_1t\": %.2f,\n"
              "  \"tau_deadline_violations\": %d\n}\n",
              speedup, total_violations);
  return (all_succeeded && p99_within_tau && total_violations == 0) ? 0 : 1;
}
