// Distributed-backend chaos soak (DESIGN.md §10): reader gateways driving a
// partitioned VaultCluster over a lossy WAN while the harness injects a hard
// node crash (memory lost, failover delayed) and a graceful drain
// mid-traffic. The point of the bench is not throughput — it is that the
// rejection ledger stays EXACT under chaos:
//
//  * deterministic probes run on a loss-free channel, so every rejection
//    class has a closed-form expected count: byte-identical replays of
//    granted requests -> kReplay (including replays of pre-crash grants
//    against the promoted replica — the crash must not reopen the replay
//    window), tampered MACs -> kBadMac, garbage frames -> kMalformed,
//    requests into the crash-to-failover window -> kUnavailable, and a
//    blackhole gateway (100% loss) -> kRetryExhausted;
//  * chaos traffic (>= 5% loss + corruption + duplication + jitter) has no
//    per-request closed form, but hard invariants: every submitted request
//    resolves with a typed status (no hangs, no losses), retries never
//    produce kReplay (the idempotency cache absorbs them), kUnavailable
//    never appears outside the crash window (a drain is gap-free), and the
//    well-formed grant rate after retries stays >= 95%;
//  * cluster-side accounting bounds double-grants to zero: unique vault
//    grants never exceed distinct well-formed requests, and every grant the
//    gateways did not observe is covered by a typed unresolved-response
//    outcome.
//
// Exit code asserts all of the above; tools/ci.sh re-validates the emitted
// JSON in its cluster_gate leg.
//
// Knobs: WAVEKEY_BENCH_SCALE scales sessions (default 1.0);
// WAVEKEY_CLUSTER_LOSS overrides the chaos loss rate (default 0.06).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>
#include <vector>

#include "crypto/drbg.hpp"
#include "server/cluster.hpp"
#include "server/gateway.hpp"

using namespace wavekey;
using namespace wavekey::server;

namespace {

double bench_scale() {
  if (const char* env = std::getenv("WAVEKEY_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) return s;
  }
  return 1.0;
}

double chaos_loss() {
  if (const char* env = std::getenv("WAVEKEY_CLUSTER_LOSS")) {
    const double l = std::atof(env);
    if (l >= 0.0 && l < 0.5) return l;
  }
  return 0.06;
}

std::array<std::uint8_t, kNonceBytes> nonce_from(std::uint64_t v) {
  std::array<std::uint8_t, kNonceBytes> nonce{};
  for (std::size_t i = 0; i < nonce.size(); ++i)
    nonce[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return nonce;
}

/// One submitted request and its observed resolution. Slots are preallocated
/// per phase so gateway callbacks can write them without reallocation races.
struct Item {
  std::uint64_t sid = 0;
  Bytes wire;
  AccessStatus status = AccessStatus::kRetryExhausted;
  bool resolved = false;
};

/// Thread-safe per-phase outcome tally.
struct Tally {
  std::mutex mutex;
  std::uint64_t submitted = 0;
  std::uint64_t resolved = 0;
  std::uint64_t outcomes[kAccessStatusCount] = {};

  ReaderGateway::Callback recorder(Item* slot) {
    return [this, slot](const GatewayResult& result) {
      std::lock_guard<std::mutex> lock(mutex);
      resolved += 1;
      outcomes[static_cast<std::size_t>(result.status)] += 1;
      if (slot) {
        slot->status = result.status;
        slot->resolved = true;
      }
    };
  }

  std::uint64_t count(AccessStatus status) {
    std::lock_guard<std::mutex> lock(mutex);
    return outcomes[static_cast<std::size_t>(status)];
  }
  std::uint64_t sum() {
    std::lock_guard<std::mutex> lock(mutex);
    std::uint64_t total = 0;
    for (std::uint64_t c : outcomes) total += c;
    return total;
  }
  bool all_resolved() {
    std::lock_guard<std::mutex> lock(mutex);
    std::uint64_t total = 0;
    for (std::uint64_t c : outcomes) total += c;
    return resolved == submitted && total == resolved;
  }
};

struct Fleet {
  VaultCluster& cluster;
  std::vector<SessionKey>& keys;
  std::vector<std::uint64_t>& next_counter;

  Bytes fresh_wire(std::uint64_t sid) {
    const std::uint64_t c = next_counter[sid]++;
    return make_access_request(sid, 0, c, nonce_from(c), {0xD0, static_cast<std::uint8_t>(sid)},
                               keys[sid])
        .serialize();
  }

  /// Submits `items` (pre-filled wires) through `gw`, one callback per slot.
  void submit_all(ReaderGateway& gw, std::vector<Item>& items, Tally& tally) {
    for (Item& item : items) {
      {
        std::lock_guard<std::mutex> lock(tally.mutex);
        tally.submitted += 1;
      }
      gw.submit(item.sid, item.wire, tally.recorder(&item));
    }
  }
};

GatewayConfig chaos_gateway_config(std::uint32_t id, double loss, std::size_t queue) {
  GatewayConfig cfg;
  cfg.gateway_id = id;
  cfg.workers = 4;
  cfg.queue_capacity = queue;
  // The retry budget (~14 ms of backoff across 8 attempts) is sized to
  // outlast the crash->failover window the harness leaves open, so traffic
  // in flight across the crash overwhelmingly rides through to a grant.
  cfg.max_attempts = 8;
  cfg.attempt_timeout_s = 0.050;
  cfg.backoff_base_s = 0.0002;
  cfg.backoff_max_s = 0.004;
  cfg.channel.seed = 0xC7A05 + id;
  protocol::LinkFaultConfig wan;
  wan.loss = loss;
  wan.corrupt = 0.02;
  wan.duplicate = 0.03;
  wan.reorder = 0.02;
  wan.jitter = protocol::JitterDistribution::kExponential;
  wan.jitter_s = 0.002;
  cfg.channel.mobile_to_server = wan;
  cfg.channel.server_to_mobile = wan;
  return cfg;
}

GatewayConfig clean_gateway_config(std::uint32_t id, std::uint32_t attempts) {
  GatewayConfig cfg;
  cfg.gateway_id = id;
  cfg.workers = 2;
  cfg.queue_capacity = 256;
  cfg.max_attempts = attempts;
  cfg.channel.seed = 0xFACE + id;  // all fault rates zero: deterministic
  return cfg;
}

const char* ok(bool b) { return b ? "true" : "false"; }

}  // namespace

int main() {
  const double scale = bench_scale();
  const double loss = chaos_loss();
  const std::uint64_t sessions = std::max<std::uint64_t>(24, static_cast<std::uint64_t>(64 * scale));
  const int healthy_rounds = 3;

  ClusterConfig cluster_config;
  cluster_config.nodes = 4;
  cluster_config.partitions = 64;
  cluster_config.vault.shards = 8;
  cluster_config.vault.capacity = sessions * 4 + 256;
  cluster_config.vault.ttl_s = 3600.0;
  cluster_config.vault.replay_window_bits = 1024;  // chaos reorders freely
  VaultCluster cluster(cluster_config);

  crypto::Drbg rng(0xD15C0ull);
  std::vector<SessionKey> keys(sessions);
  std::vector<std::uint64_t> next_counter(sessions, 1);
  for (std::uint64_t sid = 0; sid < sessions; ++sid) {
    rng.random_bytes(keys[sid]);
    if (!cluster.install(sid, keys[sid])) {
      std::printf("{\"bench\": \"cluster\", \"error\": \"install failed\"}\n");
      return 1;
    }
  }
  Fleet fleet{cluster, keys, next_counter};

  // ---- phase 1: healthy soak over the lossy WAN ---------------------------
  Tally healthy;
  std::vector<Item> healthy_items(sessions * healthy_rounds);
  for (std::size_t i = 0; i < healthy_items.size(); ++i) {
    healthy_items[i].sid = i % sessions;
    healthy_items[i].wire = fleet.fresh_wire(healthy_items[i].sid);
  }
  GatewayStats healthy_gw;  // keeps the phase-1 pool counters for the gate
  std::size_t healthy_lanes = 0;
  {
    const GatewayConfig healthy_config = chaos_gateway_config(1, loss, healthy_items.size() + 16);
    healthy_lanes = healthy_config.workers;
    ReaderGateway gw(cluster, healthy_config);
    fleet.submit_all(gw, healthy_items, healthy);
    gw.finish();
    healthy_gw = gw.stats();
  }

  // ---- phase 2: deterministic probes (loss-free channel) ------------------
  // Byte-identical replays of *granted* requests under fresh request ids:
  // the dedup cache does not apply (new id), the replay window must.
  Tally probes;
  std::vector<Item> replay_items;
  for (const Item& item : healthy_items)
    if (item.status == AccessStatus::kGranted && replay_items.size() < 32)
      replay_items.push_back(Item{item.sid, item.wire, AccessStatus::kRetryExhausted, false});
  std::vector<Item> bad_mac_items, malformed_items;
  for (int i = 0; i < 24; ++i) {
    const std::uint64_t sid = static_cast<std::uint64_t>(i) % sessions;
    Item bad;
    bad.sid = sid;
    bad.wire = fleet.fresh_wire(sid);
    bad.wire[bad.wire.size() - 1] ^= 0x40;  // last MAC byte: HMAC must fail
    bad_mac_items.push_back(std::move(bad));
    Item garbage;
    garbage.sid = sid;
    garbage.wire = {static_cast<std::uint8_t>(i), 0xFF, 0x00, 0x42};  // not a request
    malformed_items.push_back(std::move(garbage));
  }
  {
    ReaderGateway gw(cluster, clean_gateway_config(2, 4));
    fleet.submit_all(gw, replay_items, probes);
    fleet.submit_all(gw, bad_mac_items, probes);
    fleet.submit_all(gw, malformed_items, probes);
    gw.finish();
  }

  // ---- phase 3: hard crash mid-traffic, probe the window, fail over -------
  const NodeId victim = 0;
  std::vector<std::uint64_t> victim_sids;
  for (std::uint64_t sid = 0; sid < sessions && victim_sids.size() < 16; ++sid)
    if (cluster.owners_of(sid).primary == victim) victim_sids.push_back(sid);

  Tally crash_phase;
  std::vector<Item> crash_items(sessions * 2);
  for (std::size_t i = 0; i < crash_items.size(); ++i) {
    crash_items[i].sid = i % sessions;
    crash_items[i].wire = fleet.fresh_wire(crash_items[i].sid);
  }
  Tally window;
  std::vector<Item> window_items;
  for (const std::uint64_t sid : victim_sids)
    window_items.push_back(Item{sid, fleet.fresh_wire(sid), AccessStatus::kRetryExhausted, false});

  {
    ReaderGateway gw(cluster, chaos_gateway_config(3, loss, crash_items.size() + 16));
    // First wave in flight...
    for (std::size_t i = 0; i < sessions; ++i) {
      {
        std::lock_guard<std::mutex> lock(crash_phase.mutex);
        crash_phase.submitted += 1;
      }
      gw.submit(crash_items[i].sid, crash_items[i].wire, crash_phase.recorder(&crash_items[i]));
    }
    // ...when the node dies. Partitions are NOT reassigned yet: requests for
    // the victim's partitions get typed kUnavailable until fail_over().
    cluster.crash(victim);
    {
      // Single-attempt probes on a clean channel: each one deterministically
      // observes the unavailability window. finish() bounds the window — the
      // failover below runs only after every probe resolved.
      ReaderGateway probe(cluster, clean_gateway_config(4, 1));
      fleet.submit_all(probe, window_items, window);
      probe.finish();
    }
    cluster.fail_over();
    // Second wave lands on the promoted replicas.
    for (std::size_t i = sessions; i < crash_items.size(); ++i) {
      {
        std::lock_guard<std::mutex> lock(crash_phase.mutex);
        crash_phase.submitted += 1;
      }
      gw.submit(crash_items[i].sid, crash_items[i].wire, crash_phase.recorder(&crash_items[i]));
    }
    gw.finish();
  }

  // ---- phase 4: the crash must not have reopened the replay surface -------
  // Replays of PRE-CRASH grants whose primary was the dead node: the
  // promoted replica inherited the accepted counters (synchronous mirror +
  // handoff), so every one must come back kReplay.
  Tally reopened;
  std::vector<Item> reopened_items;
  for (const Item& item : healthy_items) {
    if (item.status != AccessStatus::kGranted) continue;
    bool was_victims = false;
    for (const std::uint64_t sid : victim_sids) was_victims |= sid == item.sid;
    if (was_victims && reopened_items.size() < 16)
      reopened_items.push_back(Item{item.sid, item.wire, AccessStatus::kRetryExhausted, false});
  }
  {
    ReaderGateway gw(cluster, clean_gateway_config(5, 4));
    fleet.submit_all(gw, reopened_items, reopened);
    gw.finish();
  }

  // ---- phase 5: graceful drain mid-traffic --------------------------------
  const NodeId drained = 1;
  Tally drain_phase;
  std::vector<Item> drain_items(sessions * 2);
  for (std::size_t i = 0; i < drain_items.size(); ++i) {
    drain_items[i].sid = i % sessions;
    drain_items[i].wire = fleet.fresh_wire(drain_items[i].sid);
  }
  {
    ReaderGateway gw(cluster, chaos_gateway_config(6, loss, drain_items.size() + 16));
    for (std::size_t i = 0; i < sessions; ++i) {
      {
        std::lock_guard<std::mutex> lock(drain_phase.mutex);
        drain_phase.submitted += 1;
      }
      gw.submit(drain_items[i].sid, drain_items[i].wire, drain_phase.recorder(&drain_items[i]));
    }
    // Handoff is atomic under the topology lock: state (replay windows and
    // idempotency records included) moves before the node goes down, so the
    // drain is invisible — the gate below asserts zero kUnavailable here.
    cluster.drain(drained);
    for (std::size_t i = sessions; i < drain_items.size(); ++i) {
      {
        std::lock_guard<std::mutex> lock(drain_phase.mutex);
        drain_phase.submitted += 1;
      }
      gw.submit(drain_items[i].sid, drain_items[i].wire, drain_phase.recorder(&drain_items[i]));
    }
    gw.finish();
  }

  // ---- phase 6: blackhole (100% loss both ways) ---------------------------
  Tally blackhole;
  std::vector<Item> blackhole_items;
  for (int i = 0; i < 24; ++i) {
    const std::uint64_t sid = static_cast<std::uint64_t>(i) % sessions;
    blackhole_items.push_back(Item{sid, fleet.fresh_wire(sid), AccessStatus::kRetryExhausted, false});
  }
  {
    GatewayConfig cfg = chaos_gateway_config(7, 0.0, 256);
    cfg.max_attempts = 2;
    cfg.backoff_base_s = 0.0;
    cfg.channel.mobile_to_server.loss = 1.0;
    cfg.channel.server_to_mobile.loss = 1.0;
    ReaderGateway gw(cluster, cfg);
    fleet.submit_all(gw, blackhole_items, blackhole);
    gw.finish();
  }

  // ---- ledger -------------------------------------------------------------
  const ClusterStats cs = cluster.stats();

  const std::uint64_t accepted_replays =
      probes.count(AccessStatus::kGranted) + reopened.count(AccessStatus::kGranted);
  const std::uint64_t wellformed_submitted =
      healthy.submitted + crash_phase.submitted + drain_phase.submitted;
  const std::uint64_t wellformed_granted = healthy.count(AccessStatus::kGranted) +
                                           crash_phase.count(AccessStatus::kGranted) +
                                           drain_phase.count(AccessStatus::kGranted);
  const std::uint64_t unresolved_response = crash_phase.count(AccessStatus::kUnavailable) +
                                            crash_phase.count(AccessStatus::kRetryExhausted) +
                                            healthy.count(AccessStatus::kRetryExhausted) +
                                            drain_phase.count(AccessStatus::kRetryExhausted);
  // Every vault grant is either observed by a gateway or covered by a typed
  // lost-response outcome; more grants than distinct well-formed requests
  // would mean a double-grant.
  const std::uint64_t double_grants =
      cs.vault_grants > wellformed_submitted ? cs.vault_grants - wellformed_submitted : 0;
  const bool grants_accounted = cs.vault_grants >= wellformed_granted &&
                                cs.vault_grants <= wellformed_granted + unresolved_response;

  const bool resolved_ok = healthy.all_resolved() && probes.all_resolved() &&
                           crash_phase.all_resolved() && window.all_resolved() &&
                           reopened.all_resolved() && drain_phase.all_resolved() &&
                           blackhole.all_resolved();
  const std::uint64_t unresolved_in_flight =
      (healthy.submitted - healthy.resolved) + (probes.submitted - probes.resolved) +
      (crash_phase.submitted - crash_phase.resolved) + (window.submitted - window.resolved) +
      (reopened.submitted - reopened.resolved) + (drain_phase.submitted - drain_phase.resolved) +
      (blackhole.submitted - blackhole.resolved);

  const bool probe_ledger_ok =
      probes.count(AccessStatus::kReplay) == replay_items.size() &&
      probes.count(AccessStatus::kBadMac) == bad_mac_items.size() &&
      probes.count(AccessStatus::kMalformed) == malformed_items.size() &&
      probes.sum() == replay_items.size() + bad_mac_items.size() + malformed_items.size();
  const bool window_ledger_ok =
      window.count(AccessStatus::kUnavailable) == window_items.size() &&
      window.sum() == window_items.size();
  const bool reopened_ledger_ok =
      reopened.count(AccessStatus::kReplay) == reopened_items.size() &&
      reopened.sum() == reopened_items.size();
  const bool blackhole_ledger_ok =
      blackhole.count(AccessStatus::kRetryExhausted) == blackhole_items.size() &&
      blackhole.sum() == blackhole_items.size();
  // Chaos traffic never sees kReplay (dedup absorbs retries), and
  // kUnavailable exists only inside the crash->failover window.
  const bool chaos_typed_ok =
      healthy.count(AccessStatus::kReplay) == 0 && crash_phase.count(AccessStatus::kReplay) == 0 &&
      drain_phase.count(AccessStatus::kReplay) == 0 &&
      healthy.count(AccessStatus::kUnavailable) == 0 &&
      drain_phase.count(AccessStatus::kUnavailable) == 0;
  const double wellformed_success =
      wellformed_submitted == 0
          ? 0.0
          : static_cast<double>(wellformed_granted) / static_cast<double>(wellformed_submitted);
  const bool success_ok = wellformed_success >= 0.95;
  const bool chaos_ran = cs.crashes == 1 && cs.drains == 1 && cs.failovers == 1 &&
                         window_items.size() > 0 && reopened_items.size() > 0;

  std::printf("{\n  \"bench\": \"cluster\",\n");
  std::printf("  \"sessions\": %llu,\n  \"nodes\": %u,\n  \"partitions\": %u,\n",
              static_cast<unsigned long long>(sessions), cluster.nodes(), cluster.partitions());
  std::printf("  \"wan_loss\": %.3f,\n", loss);
  std::printf("  \"phases\": {\n");
  const auto phase_json = [](const char* name, Tally& t, bool last = false) {
    std::printf("    \"%s\": {\"submitted\": %llu, \"resolved\": %llu, \"granted\": %llu, "
                "\"replay\": %llu, \"bad_mac\": %llu, \"malformed\": %llu, "
                "\"unavailable\": %llu, \"retry_exhausted\": %llu}%s\n",
                name, static_cast<unsigned long long>(t.submitted),
                static_cast<unsigned long long>(t.resolved),
                static_cast<unsigned long long>(t.count(AccessStatus::kGranted)),
                static_cast<unsigned long long>(t.count(AccessStatus::kReplay)),
                static_cast<unsigned long long>(t.count(AccessStatus::kBadMac)),
                static_cast<unsigned long long>(t.count(AccessStatus::kMalformed)),
                static_cast<unsigned long long>(t.count(AccessStatus::kUnavailable)),
                static_cast<unsigned long long>(t.count(AccessStatus::kRetryExhausted)),
                last ? "" : ",");
  };
  phase_json("healthy", healthy);
  phase_json("probes", probes);
  phase_json("crash", crash_phase);
  phase_json("crash_window", window);
  phase_json("post_failover_replay", reopened);
  phase_json("drain", drain_phase);
  phase_json("blackhole", blackhole, true);
  std::printf("  },\n");
  std::printf("  \"cluster\": {\"executed\": %llu, \"vault_grants\": %llu, \"dedup_hits\": %llu, "
              "\"unavailable\": %llu, \"crashes\": %llu, \"drains\": %llu, \"failovers\": %llu, "
              "\"partitions_moved\": %llu, \"sessions_migrated\": %llu},\n",
              static_cast<unsigned long long>(cs.executed),
              static_cast<unsigned long long>(cs.vault_grants),
              static_cast<unsigned long long>(cs.dedup_hits),
              static_cast<unsigned long long>(cs.unavailable),
              static_cast<unsigned long long>(cs.crashes),
              static_cast<unsigned long long>(cs.drains),
              static_cast<unsigned long long>(cs.failovers),
              static_cast<unsigned long long>(cs.partitions_moved),
              static_cast<unsigned long long>(cs.sessions_migrated));
  // Zero-copy wire gate: across the whole phase-1 soak (every frame built
  // through the pooled path) the pool may allocate at most one buffer per
  // lane — the warm-up watermark — while leases track frames built. Any
  // per-request allocation would push allocations toward leases.
  const bool pool_ok = healthy_gw.pool_allocations <= healthy_lanes &&
                       healthy_gw.pool_leases >= healthy_gw.frames_sent &&
                       healthy_gw.pool_leases > healthy_gw.pool_allocations;
  std::printf("  \"pooled_wire\": {\"lanes\": %zu, \"frames_sent\": %llu, "
              "\"pool_leases\": %llu, \"pool_allocations\": %llu, \"steady_state_ok\": %s},\n",
              healthy_lanes, static_cast<unsigned long long>(healthy_gw.frames_sent),
              static_cast<unsigned long long>(healthy_gw.pool_leases),
              static_cast<unsigned long long>(healthy_gw.pool_allocations), ok(pool_ok));
  std::printf("  \"accepted_replays\": %llu,\n  \"double_grants\": %llu,\n"
              "  \"unresolved_in_flight\": %llu,\n  \"wellformed_success\": %.4f,\n",
              static_cast<unsigned long long>(accepted_replays),
              static_cast<unsigned long long>(double_grants),
              static_cast<unsigned long long>(unresolved_in_flight), wellformed_success);
  std::printf("  \"probe_ledger_ok\": %s,\n  \"window_ledger_ok\": %s,\n"
              "  \"reopened_ledger_ok\": %s,\n  \"blackhole_ledger_ok\": %s,\n"
              "  \"chaos_typed_ok\": %s,\n  \"grants_accounted\": %s,\n"
              "  \"chaos_ran\": %s,\n  \"success_ok\": %s,\n  \"resolved_ok\": %s\n}\n",
              ok(probe_ledger_ok), ok(window_ledger_ok), ok(reopened_ledger_ok),
              ok(blackhole_ledger_ok), ok(chaos_typed_ok), ok(grants_accounted), ok(chaos_ran),
              ok(success_ok), ok(resolved_ok));

  const bool pass = accepted_replays == 0 && double_grants == 0 && unresolved_in_flight == 0 &&
                    resolved_ok && probe_ledger_ok && window_ledger_ok && reopened_ledger_ok &&
                    blackhole_ledger_ok && chaos_typed_ok && grants_accounted && chaos_ran &&
                    success_ok && pool_ok;
  return pass ? 0 : 1;
}
