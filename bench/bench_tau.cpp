// Reproduces SVI-C3: determination of the message deadline tau. The paper
// measures the time each device needs to prepare the OT messages M_A / M_B
// and sets tau = 120 ms as a comfortable bound that a video-pipeline
// attacker cannot meet. We measure the real preparation cost of every
// protocol message on this machine and report the camera attacker's
// modelled latency for contrast.

#include <chrono>

#include "bench/common.hpp"
#include "crypto/drbg.hpp"
#include "numeric/stats.hpp"
#include "protocol/key_agreement.hpp"
#include "sim/camera.hpp"

using namespace wavekey;

namespace {

template <typename F>
double ms_of(F&& f) {
  const auto t0 = std::chrono::steady_clock::now();
  f();
  const auto t1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main() {
  bench::print_header("tau determination -- message preparation times",
                      "WaveKey (ICDCS'24) SVI-C3");

  protocol::AgreementParams params;
  params.seed_bits = bench::system().config().seed_bits();
  params.key_bits = 256;
  params.eta = bench::system().config().eta;

  const int reps = bench::scaled(40);
  std::vector<double> t_a, t_b, t_e, t_total;
  crypto::Drbg rng(1);
  for (int i = 0; i < reps; ++i) {
    crypto::Drbg srng(static_cast<std::uint64_t>(i) * 3 + 1);
    crypto::Drbg rrng(static_cast<std::uint64_t>(i) * 3 + 2);
    const BitVec seed = rng.random_bits(params.seed_bits);

    double total = 0.0;
    protocol::Bytes msg_a, msg_b, msg_e;
    std::unique_ptr<protocol::PadSender> sender;
    std::unique_ptr<protocol::PadReceiver> receiver;
    total += ms_of([&] {
      sender = std::make_unique<protocol::PadSender>(params, srng);
      msg_a = sender->message_a();
    });
    t_a.push_back(total);
    double tb = ms_of([&] {
      receiver = std::make_unique<protocol::PadReceiver>(params, seed, msg_a, rrng);
      msg_b = receiver->message_b();
    });
    t_b.push_back(tb);
    total += tb;
    double te = ms_of([&] { msg_e = sender->make_cipher_message(msg_b, srng); });
    t_e.push_back(te);
    total += te;
    t_total.push_back(total);
  }

  std::printf("message preparation, %d repetitions, l_s = %zu OT instances:\n\n", reps,
              params.seed_bits);
  auto row = [](const char* name, std::vector<double>& xs) {
    std::printf("  %-28s mean %7.2f ms   p99 %7.2f ms   max %7.2f ms\n", name, mean(xs),
                percentile(xs, 99), percentile(xs, 100));
  };
  row("M_A (batched g^a)", t_a);
  row("M_B (batched responses)", t_b);
  row("M_E (batched ciphertexts)", t_e);
  row("all messages, one side", t_total);

  const double worst = percentile(t_total, 100);
  std::printf("\npaper: every device prepared its messages within 100 ms -> tau = 120 ms\n");
  std::printf("here:  worst observed %.1f ms -> tau = 120 ms %s\n", worst,
              worst < 120.0 ? "holds on this machine" : "would need enlarging here");

  // The adversary's side of the ledger: camera pipelines cannot make it.
  const sim::CameraConfig remote = sim::CameraConfig::remote();
  const sim::CameraConfig insitu = sim::CameraConfig::in_situ();
  const double frames_remote = remote.fps * 2.0;
  const double frames_insitu = insitu.fps * 2.0;
  std::printf("\nattacker latency models (2 s of video):\n");
  std::printf("  remote  (260 fps, Complexer-YOLO + streaming): %7.0f ms  >> tau\n",
              1000.0 * (remote.stream_latency + remote.per_frame_latency * frames_remote));
  std::printf("  in-situ (30 fps, YoloV5 on-device):            %7.0f ms  >> tau\n",
              1000.0 * (insitu.stream_latency + insitu.per_frame_latency * frames_insitu));
  return 0;
}
