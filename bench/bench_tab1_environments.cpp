// Reproduces Table I: key-establishment success rates P_k across four
// environments, static (S) and dynamic (D) conditions. The paper runs 6
// volunteers x 50 gestures per cell; instance counts here scale with
// WAVEKEY_BENCH_SCALE.

#include "bench/common.hpp"

using namespace wavekey;

int main() {
  bench::print_header("Table I -- key-establishment success in four environments",
                      "WaveKey (ICDCS'24) SVI-F1, Table I");

  const int n = bench::scaled(30);
  std::printf("%d key establishments per cell\n\n", n);
  std::printf("Envr.     |");
  for (int env = 1; env <= 4; ++env) std::printf("      %d      |", env);
  std::printf("\nCondition |");
  for (int env = 1; env <= 4; ++env) std::printf("   S  |   D  |");
  std::printf("\nP_k (%%)   |");

  // Paper reference: S/D per env: 99.7/99.0, 100/98.6, 99.7/99.0, 99.3/99.0.
  for (int env = 1; env <= 4; ++env) {
    for (const bool dynamic : {false, true}) {
      sim::ScenarioConfig sc = bench::default_scenario(0);
      sc.environment_id = env;
      sc.dynamic_environment = dynamic;
      const double rate = bench::key_establishment_rate(
          sc, n, static_cast<std::uint64_t>(env * 2 + (dynamic ? 1 : 0)));
      std::printf("%5.1f |", rate);
    }
  }
  std::printf("\n\npaper     |");
  const double paper[] = {99.7, 99.0, 100.0, 98.6, 99.7, 99.0, 99.3, 99.0};
  for (double p : paper) std::printf("%5.1f |", p);
  std::printf("\n");
  return 0;
}
