// Reliability sweep: key-agreement success rate vs. packet-loss rate and
// latency jitter, single-shot transport vs. the ARQ transport, on identical
// deterministic channel seeds. Emits a JSON curve (one object per loss
// point) demonstrating that the ARQ wins back the sessions the single-shot
// protocol loses, without ever counting a tau-deadline violation as a
// success (the session engine enforces the deadline; this bench re-checks
// critical_arrival_s and counts violations separately).
//
// Protocol-level bench: seeds are synthetic (identical on both sides), so
// the curve isolates *transport* behaviour from pipeline noise. Scale the
// per-point session count with WAVEKEY_BENCH_SCALE.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "crypto/drbg.hpp"
#include "protocol/arq.hpp"
#include "protocol/faulty_channel.hpp"
#include "protocol/session.hpp"

using namespace wavekey;
using namespace wavekey::protocol;

namespace {

int session_count() {
  double scale = 1.0;
  if (const char* env = std::getenv("WAVEKEY_BENCH_SCALE")) {
    const double s = std::atof(env);
    if (s > 0.0) scale = s;
  }
  const int n = static_cast<int>(120 * scale);
  return n < 8 ? 8 : n;
}

struct SweepPoint {
  double loss;
  double jitter_ms;
  int sessions = 0;
  int single_ok = 0;
  int arq_ok = 0;
  int arq_timeouts = 0;
  long retransmissions = 0;
  int deadline_violations = 0;  ///< successes whose critical arrival broke tau (must stay 0)
};

SweepPoint run_point(double loss, double jitter_ms, int sessions) {
  SessionConfig config;
  config.params.seed_bits = 48;
  config.params.key_bits = 256;
  config.params.eta = 0.10;
  const double deadline = config.gesture_window_s + config.tau_s;

  LinkFaultConfig f;
  f.loss = loss;
  f.corrupt = loss / 10.0;  // bursty channels corrupt as well as drop
  f.duplicate = loss / 10.0;
  f.jitter = jitter_ms > 0.0 ? JitterDistribution::kExponential : JitterDistribution::kNone;
  f.jitter_s = jitter_ms / 1000.0;

  SweepPoint point;
  point.loss = loss;
  point.jitter_ms = jitter_ms;
  point.sessions = sessions;
  for (int i = 0; i < sessions; ++i) {
    const std::uint64_t cs = static_cast<std::uint64_t>(i) * 7919 + 17;
    crypto::Drbg seed_rng(cs ^ 0xF00Dull);
    const BitVec seed = seed_rng.random_bits(48);

    {
      FaultyChannel channel(FaultyChannelConfig::symmetric(f, cs));
      crypto::Drbg m_rng(cs * 2 + 1), s_rng(cs * 2 + 2);
      const SessionResult r =
          run_key_agreement(config, seed, seed, m_rng, s_rng, channel.as_interceptor());
      if (r.success) {
        ++point.single_ok;
        if (r.critical_arrival_s > deadline) ++point.deadline_violations;
      }
    }
    {
      FaultyChannel channel(FaultyChannelConfig::symmetric(f, cs));
      crypto::Drbg m_rng(cs * 2 + 1), s_rng(cs * 2 + 2);
      const SessionResult r =
          run_key_agreement_arq(config, ArqConfig{}, channel, seed, seed, m_rng, s_rng);
      if (r.success) {
        ++point.arq_ok;
        if (r.critical_arrival_s > deadline) ++point.deadline_violations;
      } else if (r.failure == FailureReason::kTimeout) {
        ++point.arq_timeouts;
      }
      point.retransmissions += r.arq.retransmissions;
    }
  }
  return point;
}

}  // namespace

int main() {
  const int sessions = session_count();
  const double loss_rates[] = {0.0, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30};
  const double jitters_ms[] = {0.0, 10.0};

  std::printf("{\n  \"bench\": \"reliability\",\n  \"sessions_per_point\": %d,\n  \"points\": [\n",
              sessions);
  bool first = true;
  bool arq_dominates = true;
  int total_violations = 0;
  for (double jitter : jitters_ms) {
    for (double loss : loss_rates) {
      const SweepPoint p = run_point(loss, jitter, sessions);
      if (p.arq_ok < p.single_ok) arq_dominates = false;
      total_violations += p.deadline_violations;
      std::printf("%s    {\"loss\": %.2f, \"jitter_ms\": %.0f, "
                  "\"single_shot_success\": %.4f, \"arq_success\": %.4f, "
                  "\"arq_timeouts\": %d, \"mean_retransmissions\": %.2f, "
                  "\"deadline_violations\": %d}",
                  first ? "" : ",\n", p.loss, p.jitter_ms,
                  static_cast<double>(p.single_ok) / p.sessions,
                  static_cast<double>(p.arq_ok) / p.sessions, p.arq_timeouts,
                  static_cast<double>(p.retransmissions) / p.sessions, p.deadline_violations);
      first = false;
    }
  }
  std::printf("\n  ],\n  \"arq_at_least_single_shot_everywhere\": %s,\n"
              "  \"tau_deadline_violations\": %d\n}\n",
              arq_dominates ? "true" : "false", total_violations);
  return (arq_dominates && total_violations == 0) ? 0 : 1;
}
