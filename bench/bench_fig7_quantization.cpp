// Reproduces Fig. 7: random-guessing and gesture-mimicking success rates as
// a function of the quantization bin count N_b (SVI-C2). For each N_b the
// bench recalibrates the quantizer bins and eta (the 99th percentile of the
// benign mismatch, keeping the benign success rate ~99% by construction),
// then computes P_g from Eq. (4) and replays a fixed set of mimic attacks.
// The latent features are extracted once and re-quantized per N_b, exactly
// as the paper reuses its dataset D across the sweep.
//
// Also prints the equal-probability vs equal-width bin ablation called out
// in DESIGN.md SS4.1 (per-element seed entropy).

#include <cmath>

#include "attacks/attack_eval.hpp"
#include "bench/common.hpp"
#include "core/key_seed.hpp"
#include "numeric/stats.hpp"

using namespace wavekey;

int main() {
  bench::print_header("Fig. 7 -- attack success vs quantization bins N_b",
                      "WaveKey (ICDCS'24) SVI-C2, Fig. 7");

  core::WaveKeySystem& system = bench::system();
  core::EncoderPair& encoders = system.encoders();
  const core::WaveKeyConfig& cfg = system.config();

  // Regenerate the (deterministic) dataset and extract all latents once.
  std::fprintf(stderr, "[fig7] extracting dataset latents...\n");
  const core::WaveKeyDataset dataset =
      core::WaveKeyDataset::generate(core::default_dataset_config(), cfg);
  const std::size_t dim = encoders.latent_dim();
  std::vector<std::vector<double>> pooled(dim);
  std::vector<std::vector<double>> all_fm, all_fr;
  for (std::size_t i = 0; i < dataset.size(); ++i) {
    const core::Sample& s = dataset.sample(i);
    all_fm.push_back(encoders.imu_features(s.imu));
    all_fr.push_back(encoders.rfid_features(s.rfid));
    for (std::size_t d = 0; d < dim; ++d) {
      pooled[d].push_back(all_fm.back()[d]);
      pooled[d].push_back(all_fr.back()[d]);
    }
  }

  // Fixed set of mimic attacks, features extracted once.
  const int n_mimic = bench::scaled(120);
  std::fprintf(stderr, "[fig7] running %d mimic instances...\n", n_mimic);
  std::vector<attacks::LatentPair> mimic_pairs;
  for (int i = 0; i < n_mimic; ++i) {
    const auto pair =
        attacks::mimic_latent_pair(encoders, cfg, bench::default_scenario(i),
                                   attacks::MimicSkill::average(),
                                   9000 + static_cast<std::uint64_t>(i) * 977);
    if (pair) mimic_pairs.push_back(*pair);
  }

  std::printf("\n%zu benign samples, %zu mimic instances per N_b\n\n", dataset.size(),
              mimic_pairs.size());
  std::printf(" N_b | l_s |  p99   |  eta   | P_guess (Eq.4) | mimic success | benign success\n");
  std::printf("-----+-----+--------+--------+----------------+---------------+---------------\n");

  for (std::size_t nb = 4; nb <= 15; ++nb) {
    const core::SeedQuantizer quantizer = core::SeedQuantizer::from_pooled(pooled, nb);

    // Benign mismatch distribution -> eta at the 99th percentile.
    std::vector<double> mismatches;
    for (std::size_t i = 0; i < all_fm.size(); ++i) {
      const BitVec sm = quantizer.quantize(all_fm[i]);
      const BitVec sr = quantizer.quantize(all_fr[i]);
      mismatches.push_back(sm.mismatch_ratio(sr));
    }
    // Same calibration policy as the shipped system: p99 of the benign
    // mismatch, bounded by the security cap (see WaveKeyConfig).
    const double p99 =
        std::max(percentile(mismatches, 99.0), 1.0 / static_cast<double>(quantizer.seed_bits()));
    const double eta = std::min(p99, cfg.eta_security_cap);
    const double p_guess = core::random_guess_success_rate(quantizer.seed_bits(), eta);

    int mimic_hits = 0;
    for (const auto& pair : mimic_pairs) {
      const BitVec sv = quantizer.quantize(pair.victim);
      const BitVec sa = quantizer.quantize(pair.attacker);
      if (sv.mismatch_ratio(sa) <= eta) ++mimic_hits;
    }
    int benign_hits = 0;
    for (double m : mismatches)
      if (m <= eta) ++benign_hits;

    std::printf(" %3zu | %3zu | %6.4f | %6.4f |   %.3e    |    %5.2f %%    |    %5.2f %%\n",
                nb, quantizer.seed_bits(), p99, eta, p_guess,
                100.0 * mimic_hits / static_cast<double>(mimic_pairs.size()),
                100.0 * benign_hits / static_cast<double>(mismatches.size()));
  }

  std::printf("\npaper shape: both attack curves are minimized near N_b = 9. Here the\n");
  std::printf("security cap pins eta (and hence both attack rates) wherever the benign\n");
  std::printf("p99 exceeds it, so the N_b tension shows up in the *benign success at\n");
  std::printf("fixed security* column instead; the paper's uncapped eta is the p99\n");
  std::printf("column (small N_b: short seeds -> guessing up; large N_b: p99 grows ->\n");
  std::printf("mimicking up).\n");

  // Ablation: equal-probability vs equal-width bins (per-element entropy).
  std::printf("\nAblation (DESIGN.md SS4.1): per-element seed entropy at N_b = 9\n");
  {
    const core::SeedQuantizer eq_prob = core::SeedQuantizer::from_pooled(pooled, 9);
    double h_prob = 0.0, h_width = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      std::vector<std::size_t> c_prob(9, 0), c_width(9, 0);
      const double lo = percentile(pooled[d], 1), hi = percentile(pooled[d], 99);
      for (double x : pooled[d]) {
        c_prob[eq_prob.bin_of(d, x)]++;
        const int wbin = std::clamp(static_cast<int>((x - lo) / (hi - lo) * 9.0), 0, 8);
        c_width[static_cast<std::size_t>(wbin)]++;
      }
      auto entropy = [&](const std::vector<std::size_t>& counts) {
        double h = 0.0;
        for (std::size_t c : counts) {
          if (c == 0) continue;
          const double p = static_cast<double>(c) / static_cast<double>(pooled[d].size());
          h -= p * std::log2(p);
        }
        return h;
      };
      h_prob += entropy(c_prob);
      h_width += entropy(c_width);
    }
    std::printf("  equal-probability bins: %.2f bits/element (max %.2f)\n", h_prob / dim,
                std::log2(9.0));
    std::printf("  equal-width bins:       %.2f bits/element\n", h_width / dim);
  }
  return 0;
}
