// Reproduces Table II: key-establishment success rates vs the user's
// distance (1..9 m at 0 deg) and azimuth (-60..60 deg at 5 m), in static
// and dynamic conditions. Paper: 200 gestures per configuration per
// condition.

#include "bench/common.hpp"

using namespace wavekey;

int main() {
  bench::print_header("Table II -- success vs distance and azimuth",
                      "WaveKey (ICDCS'24) SVI-F2, Table II");

  const int n = bench::scaled(30);
  std::printf("%d key establishments per cell\n\n", n);

  const double distances[] = {1, 3, 5, 7, 9};
  std::printf("Distance (m)      |    1 |    3 |    5 |    7 |    9 |\n");
  for (const bool dynamic : {false, true}) {
    std::printf("%-17s |", dynamic ? "Dynamic" : "Static");
    for (double d : distances) {
      sim::ScenarioConfig sc = bench::default_scenario(0);
      sc.distance_m = d;
      sc.dynamic_environment = dynamic;
      std::printf("%5.1f |", bench::key_establishment_rate(
                                 sc, n, 100 + static_cast<std::uint64_t>(d * 2 + dynamic)));
    }
    std::printf("\n");
  }
  std::printf("paper static      | 99.5 |  100 | 99.5 |  100 | 99.5 |\n");
  std::printf("paper dynamic     | 99.5 | 99.5 |   99 |   99 |   99 |\n\n");

  const double angles[] = {-60, -30, 0, 30, 60};
  std::printf("Angle (deg)       |  -60 |  -30 |    0 |   30 |   60 |\n");
  for (const bool dynamic : {false, true}) {
    std::printf("%-17s |", dynamic ? "Dynamic" : "Static");
    for (double a : angles) {
      sim::ScenarioConfig sc = bench::default_scenario(0);
      sc.azimuth_deg = a;
      sc.dynamic_environment = dynamic;
      std::printf("%5.1f |", bench::key_establishment_rate(
                                 sc, n, 200 + static_cast<std::uint64_t>(a + 70 + dynamic)));
    }
    std::printf("\n");
  }
  std::printf("paper static      |  100 |  100 | 99.5 |  100 | 99.5 |\n");
  std::printf("paper dynamic     | 99.5 |   99 |   99 | 98.5 |   99 |\n");
  return 0;
}
