// Ablation (DESIGN.md SS5.1): displacement-threshold anchoring vs the naive
// variance-trigger synchronization. Measures, over a batch of fresh
// sessions, (a) the cross-modal start-time disagreement |t_RFID - t_IMU| and
// (b) the resulting seed bit mismatch, with the anchor enabled and disabled.
// This quantifies why the anchoring exists: without it the two windows are
// tens of milliseconds apart and the seeds diverge.

#include <cmath>

#include "bench/common.hpp"
#include "core/dataset.hpp"
#include "core/key_seed.hpp"
#include "imu/imu_pipeline.hpp"
#include "numeric/stats.hpp"
#include "rfid/rfid_pipeline.hpp"

using namespace wavekey;

namespace {

struct Variant {
  const char* name;
  bool anchor;
};

}  // namespace

int main() {
  bench::print_header("Ablation -- displacement anchoring vs naive variance sync",
                      "DESIGN.md SS5.1 (supporting the SIV-B1 synchronization step)");

  core::WaveKeySystem& system = bench::system();
  const int n = bench::scaled(60);

  for (const Variant variant : {Variant{"displacement anchor (shipped)", true},
                                Variant{"naive variance trigger        ", false}}) {
    std::vector<double> deltas_ms, mismatches;
    int failures = 0;
    Rng rng(4242);
    for (int i = 0; i < n; ++i) {
      sim::ScenarioConfig sc = bench::default_scenario(i);
      sc.dynamic_environment = (i % 3 == 2);
      sim::ScenarioSimulator simulator(sc, rng.next());
      const sim::SessionRecording rec = simulator.run();

      imu::ImuPipelineConfig ic;
      ic.displacement_anchor = variant.anchor;
      rfid::RfidPipelineConfig rc;
      rc.displacement_anchor = variant.anchor;
      const auto imu_out = imu::process_imu(rec.imu, ic);
      const auto rfid_out = rfid::process_rfid(rec.rfid, rc);
      if (!imu_out || !rfid_out) {
        ++failures;
        continue;
      }
      deltas_ms.push_back(
          std::abs(rfid_out->gesture_start_time - imu_out->gesture_start_time) * 1000.0);

      const core::Sample sample = core::WaveKeyDataset::make_sample(
          imu_out->linear_accel, rfid_out->processed, system.config());
      const BitVec sm =
          core::make_key_seed(system.encoders().imu_features(sample.imu), system.quantizer());
      const BitVec sr =
          core::make_key_seed(system.encoders().rfid_features(sample.rfid), system.quantizer());
      mismatches.push_back(sm.mismatch_ratio(sr));
    }
    std::printf("\n%s  (%zu sessions, %d pipeline failures)\n", variant.name, deltas_ms.size(),
                failures);
    if (!deltas_ms.empty()) {
      std::printf("  |start disagreement|: mean %6.1f ms   p90 %6.1f ms   max %6.1f ms\n",
                  mean(deltas_ms), percentile(deltas_ms, 90), percentile(deltas_ms, 100));
      std::printf("  seed mismatch:        mean %.3f       p90 %.3f\n", mean(mismatches),
                  percentile(mismatches, 90));
    }
  }
  std::printf("\nNote: the shipped model was trained *with* anchoring, so the naive\n");
  std::printf("variant's mismatch numbers are a lower bound on its true damage.\n");
  return 0;
}
