# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/numeric_test[1]_include.cmake")
include("/root/repo/build/tests/dsp_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/ecc_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/protocol_test[1]_include.cmake")
include("/root/repo/build/tests/nist_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/attacks_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
