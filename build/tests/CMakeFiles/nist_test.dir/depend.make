# Empty dependencies file for nist_test.
# This may be replaced when dependencies are built.
