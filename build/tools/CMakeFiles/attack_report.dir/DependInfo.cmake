
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/attack_report.cpp" "tools/CMakeFiles/attack_report.dir/attack_report.cpp.o" "gcc" "tools/CMakeFiles/attack_report.dir/attack_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/wavekey_core.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/wavekey_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/wavekey_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/imu/CMakeFiles/wavekey_imu.dir/DependInfo.cmake"
  "/root/repo/build/src/rfid/CMakeFiles/wavekey_rfid.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/wavekey_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/wavekey_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/wavekey_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/wavekey_ecc.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/wavekey_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/numeric/CMakeFiles/wavekey_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
