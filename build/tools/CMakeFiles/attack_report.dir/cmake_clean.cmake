file(REMOVE_RECURSE
  "CMakeFiles/attack_report.dir/attack_report.cpp.o"
  "CMakeFiles/attack_report.dir/attack_report.cpp.o.d"
  "attack_report"
  "attack_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
