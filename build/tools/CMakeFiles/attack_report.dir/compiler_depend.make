# Empty compiler generated dependencies file for attack_report.
# This may be replaced when dependencies are built.
