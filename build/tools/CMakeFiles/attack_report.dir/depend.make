# Empty dependencies file for attack_report.
# This may be replaced when dependencies are built.
