# Empty dependencies file for train_report.
# This may be replaced when dependencies are built.
