file(REMOVE_RECURSE
  "CMakeFiles/train_report.dir/train_report.cpp.o"
  "CMakeFiles/train_report.dir/train_report.cpp.o.d"
  "train_report"
  "train_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
