# Empty compiler generated dependencies file for make_cache.
# This may be replaced when dependencies are built.
