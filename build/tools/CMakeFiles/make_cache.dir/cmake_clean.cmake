file(REMOVE_RECURSE
  "CMakeFiles/make_cache.dir/make_cache.cpp.o"
  "CMakeFiles/make_cache.dir/make_cache.cpp.o.d"
  "make_cache"
  "make_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/make_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
