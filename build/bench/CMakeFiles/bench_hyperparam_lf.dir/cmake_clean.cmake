file(REMOVE_RECURSE
  "CMakeFiles/bench_hyperparam_lf.dir/bench_hyperparam_lf.cpp.o"
  "CMakeFiles/bench_hyperparam_lf.dir/bench_hyperparam_lf.cpp.o.d"
  "bench_hyperparam_lf"
  "bench_hyperparam_lf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hyperparam_lf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
