# Empty compiler generated dependencies file for bench_hyperparam_lf.
# This may be replaced when dependencies are built.
