file(REMOVE_RECURSE
  "CMakeFiles/bench_tau.dir/bench_tau.cpp.o"
  "CMakeFiles/bench_tau.dir/bench_tau.cpp.o.d"
  "bench_tau"
  "bench_tau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
