file(REMOVE_RECURSE
  "CMakeFiles/bench_tab2_position.dir/bench_tab2_position.cpp.o"
  "CMakeFiles/bench_tab2_position.dir/bench_tab2_position.cpp.o.d"
  "bench_tab2_position"
  "bench_tab2_position.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab2_position.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
