file(REMOVE_RECURSE
  "CMakeFiles/bench_tab1_environments.dir/bench_tab1_environments.cpp.o"
  "CMakeFiles/bench_tab1_environments.dir/bench_tab1_environments.cpp.o.d"
  "bench_tab1_environments"
  "bench_tab1_environments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab1_environments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
