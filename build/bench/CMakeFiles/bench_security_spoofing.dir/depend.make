# Empty dependencies file for bench_security_spoofing.
# This may be replaced when dependencies are built.
