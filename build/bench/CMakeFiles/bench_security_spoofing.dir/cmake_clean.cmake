file(REMOVE_RECURSE
  "CMakeFiles/bench_security_spoofing.dir/bench_security_spoofing.cpp.o"
  "CMakeFiles/bench_security_spoofing.dir/bench_security_spoofing.cpp.o.d"
  "bench_security_spoofing"
  "bench_security_spoofing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_security_spoofing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
