file(REMOVE_RECURSE
  "CMakeFiles/bench_randomness.dir/bench_randomness.cpp.o"
  "CMakeFiles/bench_randomness.dir/bench_randomness.cpp.o.d"
  "bench_randomness"
  "bench_randomness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_randomness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
