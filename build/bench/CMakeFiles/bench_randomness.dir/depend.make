# Empty dependencies file for bench_randomness.
# This may be replaced when dependencies are built.
