file(REMOVE_RECURSE
  "CMakeFiles/bench_tab_devices.dir/bench_tab_devices.cpp.o"
  "CMakeFiles/bench_tab_devices.dir/bench_tab_devices.cpp.o.d"
  "bench_tab_devices"
  "bench_tab_devices.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tab_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
