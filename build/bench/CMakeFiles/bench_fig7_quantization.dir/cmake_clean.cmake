file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_quantization.dir/bench_fig7_quantization.cpp.o"
  "CMakeFiles/bench_fig7_quantization.dir/bench_fig7_quantization.cpp.o.d"
  "bench_fig7_quantization"
  "bench_fig7_quantization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
