# Empty dependencies file for bench_tab3_time.
# This may be replaced when dependencies are built.
