file(REMOVE_RECURSE
  "CMakeFiles/keyfob_registration.dir/keyfob_registration.cpp.o"
  "CMakeFiles/keyfob_registration.dir/keyfob_registration.cpp.o.d"
  "keyfob_registration"
  "keyfob_registration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keyfob_registration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
