# Empty dependencies file for keyfob_registration.
# This may be replaced when dependencies are built.
