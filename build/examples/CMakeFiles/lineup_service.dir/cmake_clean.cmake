file(REMOVE_RECURSE
  "CMakeFiles/lineup_service.dir/lineup_service.cpp.o"
  "CMakeFiles/lineup_service.dir/lineup_service.cpp.o.d"
  "lineup_service"
  "lineup_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lineup_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
