# Empty dependencies file for lineup_service.
# This may be replaced when dependencies are built.
