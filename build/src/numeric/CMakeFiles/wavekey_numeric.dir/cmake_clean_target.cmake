file(REMOVE_RECURSE
  "libwavekey_numeric.a"
)
