file(REMOVE_RECURSE
  "CMakeFiles/wavekey_numeric.dir/bitvec.cpp.o"
  "CMakeFiles/wavekey_numeric.dir/bitvec.cpp.o.d"
  "CMakeFiles/wavekey_numeric.dir/matrix.cpp.o"
  "CMakeFiles/wavekey_numeric.dir/matrix.cpp.o.d"
  "CMakeFiles/wavekey_numeric.dir/rng.cpp.o"
  "CMakeFiles/wavekey_numeric.dir/rng.cpp.o.d"
  "CMakeFiles/wavekey_numeric.dir/stats.cpp.o"
  "CMakeFiles/wavekey_numeric.dir/stats.cpp.o.d"
  "libwavekey_numeric.a"
  "libwavekey_numeric.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavekey_numeric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
