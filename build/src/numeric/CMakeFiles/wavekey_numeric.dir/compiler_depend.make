# Empty compiler generated dependencies file for wavekey_numeric.
# This may be replaced when dependencies are built.
