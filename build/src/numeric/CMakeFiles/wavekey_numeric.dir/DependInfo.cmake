
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/numeric/bitvec.cpp" "src/numeric/CMakeFiles/wavekey_numeric.dir/bitvec.cpp.o" "gcc" "src/numeric/CMakeFiles/wavekey_numeric.dir/bitvec.cpp.o.d"
  "/root/repo/src/numeric/matrix.cpp" "src/numeric/CMakeFiles/wavekey_numeric.dir/matrix.cpp.o" "gcc" "src/numeric/CMakeFiles/wavekey_numeric.dir/matrix.cpp.o.d"
  "/root/repo/src/numeric/rng.cpp" "src/numeric/CMakeFiles/wavekey_numeric.dir/rng.cpp.o" "gcc" "src/numeric/CMakeFiles/wavekey_numeric.dir/rng.cpp.o.d"
  "/root/repo/src/numeric/stats.cpp" "src/numeric/CMakeFiles/wavekey_numeric.dir/stats.cpp.o" "gcc" "src/numeric/CMakeFiles/wavekey_numeric.dir/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
