file(REMOVE_RECURSE
  "CMakeFiles/wavekey_nist.dir/nist.cpp.o"
  "CMakeFiles/wavekey_nist.dir/nist.cpp.o.d"
  "libwavekey_nist.a"
  "libwavekey_nist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavekey_nist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
