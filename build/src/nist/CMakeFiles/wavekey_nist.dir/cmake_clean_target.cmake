file(REMOVE_RECURSE
  "libwavekey_nist.a"
)
