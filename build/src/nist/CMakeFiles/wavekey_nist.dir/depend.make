# Empty dependencies file for wavekey_nist.
# This may be replaced when dependencies are built.
