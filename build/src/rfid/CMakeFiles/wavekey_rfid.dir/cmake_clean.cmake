file(REMOVE_RECURSE
  "CMakeFiles/wavekey_rfid.dir/rfid_pipeline.cpp.o"
  "CMakeFiles/wavekey_rfid.dir/rfid_pipeline.cpp.o.d"
  "libwavekey_rfid.a"
  "libwavekey_rfid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavekey_rfid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
