# Empty compiler generated dependencies file for wavekey_rfid.
# This may be replaced when dependencies are built.
