file(REMOVE_RECURSE
  "libwavekey_rfid.a"
)
