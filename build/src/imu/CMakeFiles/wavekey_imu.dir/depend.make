# Empty dependencies file for wavekey_imu.
# This may be replaced when dependencies are built.
