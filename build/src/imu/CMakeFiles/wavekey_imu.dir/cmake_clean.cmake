file(REMOVE_RECURSE
  "CMakeFiles/wavekey_imu.dir/imu_pipeline.cpp.o"
  "CMakeFiles/wavekey_imu.dir/imu_pipeline.cpp.o.d"
  "libwavekey_imu.a"
  "libwavekey_imu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavekey_imu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
