file(REMOVE_RECURSE
  "libwavekey_imu.a"
)
