# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("numeric")
subdirs("dsp")
subdirs("nn")
subdirs("crypto")
subdirs("ecc")
subdirs("sim")
subdirs("imu")
subdirs("rfid")
subdirs("protocol")
subdirs("core")
subdirs("attacks")
subdirs("nist")
