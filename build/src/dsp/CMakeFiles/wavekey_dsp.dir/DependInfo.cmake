
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/gesture_detect.cpp" "src/dsp/CMakeFiles/wavekey_dsp.dir/gesture_detect.cpp.o" "gcc" "src/dsp/CMakeFiles/wavekey_dsp.dir/gesture_detect.cpp.o.d"
  "/root/repo/src/dsp/gray_code.cpp" "src/dsp/CMakeFiles/wavekey_dsp.dir/gray_code.cpp.o" "gcc" "src/dsp/CMakeFiles/wavekey_dsp.dir/gray_code.cpp.o.d"
  "/root/repo/src/dsp/phase_unwrap.cpp" "src/dsp/CMakeFiles/wavekey_dsp.dir/phase_unwrap.cpp.o" "gcc" "src/dsp/CMakeFiles/wavekey_dsp.dir/phase_unwrap.cpp.o.d"
  "/root/repo/src/dsp/quantizer.cpp" "src/dsp/CMakeFiles/wavekey_dsp.dir/quantizer.cpp.o" "gcc" "src/dsp/CMakeFiles/wavekey_dsp.dir/quantizer.cpp.o.d"
  "/root/repo/src/dsp/resample.cpp" "src/dsp/CMakeFiles/wavekey_dsp.dir/resample.cpp.o" "gcc" "src/dsp/CMakeFiles/wavekey_dsp.dir/resample.cpp.o.d"
  "/root/repo/src/dsp/savitzky_golay.cpp" "src/dsp/CMakeFiles/wavekey_dsp.dir/savitzky_golay.cpp.o" "gcc" "src/dsp/CMakeFiles/wavekey_dsp.dir/savitzky_golay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/wavekey_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
