file(REMOVE_RECURSE
  "libwavekey_dsp.a"
)
