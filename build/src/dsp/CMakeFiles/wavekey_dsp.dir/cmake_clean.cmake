file(REMOVE_RECURSE
  "CMakeFiles/wavekey_dsp.dir/gesture_detect.cpp.o"
  "CMakeFiles/wavekey_dsp.dir/gesture_detect.cpp.o.d"
  "CMakeFiles/wavekey_dsp.dir/gray_code.cpp.o"
  "CMakeFiles/wavekey_dsp.dir/gray_code.cpp.o.d"
  "CMakeFiles/wavekey_dsp.dir/phase_unwrap.cpp.o"
  "CMakeFiles/wavekey_dsp.dir/phase_unwrap.cpp.o.d"
  "CMakeFiles/wavekey_dsp.dir/quantizer.cpp.o"
  "CMakeFiles/wavekey_dsp.dir/quantizer.cpp.o.d"
  "CMakeFiles/wavekey_dsp.dir/resample.cpp.o"
  "CMakeFiles/wavekey_dsp.dir/resample.cpp.o.d"
  "CMakeFiles/wavekey_dsp.dir/savitzky_golay.cpp.o"
  "CMakeFiles/wavekey_dsp.dir/savitzky_golay.cpp.o.d"
  "libwavekey_dsp.a"
  "libwavekey_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavekey_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
