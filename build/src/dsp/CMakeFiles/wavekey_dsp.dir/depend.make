# Empty dependencies file for wavekey_dsp.
# This may be replaced when dependencies are built.
