file(REMOVE_RECURSE
  "libwavekey_attacks.a"
)
