# Empty compiler generated dependencies file for wavekey_attacks.
# This may be replaced when dependencies are built.
