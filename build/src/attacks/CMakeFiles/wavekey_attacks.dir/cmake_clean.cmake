file(REMOVE_RECURSE
  "CMakeFiles/wavekey_attacks.dir/attack_eval.cpp.o"
  "CMakeFiles/wavekey_attacks.dir/attack_eval.cpp.o.d"
  "CMakeFiles/wavekey_attacks.dir/camera_attack.cpp.o"
  "CMakeFiles/wavekey_attacks.dir/camera_attack.cpp.o.d"
  "CMakeFiles/wavekey_attacks.dir/mimic.cpp.o"
  "CMakeFiles/wavekey_attacks.dir/mimic.cpp.o.d"
  "libwavekey_attacks.a"
  "libwavekey_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavekey_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
