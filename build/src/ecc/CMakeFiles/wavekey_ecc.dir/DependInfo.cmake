
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ecc/fuzzy_commitment.cpp" "src/ecc/CMakeFiles/wavekey_ecc.dir/fuzzy_commitment.cpp.o" "gcc" "src/ecc/CMakeFiles/wavekey_ecc.dir/fuzzy_commitment.cpp.o.d"
  "/root/repo/src/ecc/gf256.cpp" "src/ecc/CMakeFiles/wavekey_ecc.dir/gf256.cpp.o" "gcc" "src/ecc/CMakeFiles/wavekey_ecc.dir/gf256.cpp.o.d"
  "/root/repo/src/ecc/reed_solomon.cpp" "src/ecc/CMakeFiles/wavekey_ecc.dir/reed_solomon.cpp.o" "gcc" "src/ecc/CMakeFiles/wavekey_ecc.dir/reed_solomon.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/wavekey_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/wavekey_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
