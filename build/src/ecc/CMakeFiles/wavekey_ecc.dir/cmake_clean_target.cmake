file(REMOVE_RECURSE
  "libwavekey_ecc.a"
)
