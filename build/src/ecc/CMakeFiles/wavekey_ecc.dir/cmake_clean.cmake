file(REMOVE_RECURSE
  "CMakeFiles/wavekey_ecc.dir/fuzzy_commitment.cpp.o"
  "CMakeFiles/wavekey_ecc.dir/fuzzy_commitment.cpp.o.d"
  "CMakeFiles/wavekey_ecc.dir/gf256.cpp.o"
  "CMakeFiles/wavekey_ecc.dir/gf256.cpp.o.d"
  "CMakeFiles/wavekey_ecc.dir/reed_solomon.cpp.o"
  "CMakeFiles/wavekey_ecc.dir/reed_solomon.cpp.o.d"
  "libwavekey_ecc.a"
  "libwavekey_ecc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavekey_ecc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
