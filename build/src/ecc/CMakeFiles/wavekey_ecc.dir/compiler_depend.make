# Empty compiler generated dependencies file for wavekey_ecc.
# This may be replaced when dependencies are built.
