# Empty compiler generated dependencies file for wavekey_nn.
# This may be replaced when dependencies are built.
