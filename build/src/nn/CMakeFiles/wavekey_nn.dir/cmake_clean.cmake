file(REMOVE_RECURSE
  "CMakeFiles/wavekey_nn.dir/batchnorm.cpp.o"
  "CMakeFiles/wavekey_nn.dir/batchnorm.cpp.o.d"
  "CMakeFiles/wavekey_nn.dir/conv1d.cpp.o"
  "CMakeFiles/wavekey_nn.dir/conv1d.cpp.o.d"
  "CMakeFiles/wavekey_nn.dir/dense.cpp.o"
  "CMakeFiles/wavekey_nn.dir/dense.cpp.o.d"
  "CMakeFiles/wavekey_nn.dir/layer.cpp.o"
  "CMakeFiles/wavekey_nn.dir/layer.cpp.o.d"
  "CMakeFiles/wavekey_nn.dir/loss.cpp.o"
  "CMakeFiles/wavekey_nn.dir/loss.cpp.o.d"
  "CMakeFiles/wavekey_nn.dir/optimizer.cpp.o"
  "CMakeFiles/wavekey_nn.dir/optimizer.cpp.o.d"
  "CMakeFiles/wavekey_nn.dir/sequential.cpp.o"
  "CMakeFiles/wavekey_nn.dir/sequential.cpp.o.d"
  "libwavekey_nn.a"
  "libwavekey_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavekey_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
