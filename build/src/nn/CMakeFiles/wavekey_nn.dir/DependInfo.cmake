
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/batchnorm.cpp" "src/nn/CMakeFiles/wavekey_nn.dir/batchnorm.cpp.o" "gcc" "src/nn/CMakeFiles/wavekey_nn.dir/batchnorm.cpp.o.d"
  "/root/repo/src/nn/conv1d.cpp" "src/nn/CMakeFiles/wavekey_nn.dir/conv1d.cpp.o" "gcc" "src/nn/CMakeFiles/wavekey_nn.dir/conv1d.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/wavekey_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/wavekey_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/wavekey_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/wavekey_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/wavekey_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/wavekey_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/wavekey_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/wavekey_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/nn/CMakeFiles/wavekey_nn.dir/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/wavekey_nn.dir/sequential.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/wavekey_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
