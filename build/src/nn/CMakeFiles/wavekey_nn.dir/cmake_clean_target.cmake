file(REMOVE_RECURSE
  "libwavekey_nn.a"
)
