
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/key_agreement.cpp" "src/protocol/CMakeFiles/wavekey_protocol.dir/key_agreement.cpp.o" "gcc" "src/protocol/CMakeFiles/wavekey_protocol.dir/key_agreement.cpp.o.d"
  "/root/repo/src/protocol/session.cpp" "src/protocol/CMakeFiles/wavekey_protocol.dir/session.cpp.o" "gcc" "src/protocol/CMakeFiles/wavekey_protocol.dir/session.cpp.o.d"
  "/root/repo/src/protocol/wire.cpp" "src/protocol/CMakeFiles/wavekey_protocol.dir/wire.cpp.o" "gcc" "src/protocol/CMakeFiles/wavekey_protocol.dir/wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/wavekey_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/wavekey_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/ecc/CMakeFiles/wavekey_ecc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
