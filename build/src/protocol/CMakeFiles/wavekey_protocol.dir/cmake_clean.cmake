file(REMOVE_RECURSE
  "CMakeFiles/wavekey_protocol.dir/key_agreement.cpp.o"
  "CMakeFiles/wavekey_protocol.dir/key_agreement.cpp.o.d"
  "CMakeFiles/wavekey_protocol.dir/session.cpp.o"
  "CMakeFiles/wavekey_protocol.dir/session.cpp.o.d"
  "CMakeFiles/wavekey_protocol.dir/wire.cpp.o"
  "CMakeFiles/wavekey_protocol.dir/wire.cpp.o.d"
  "libwavekey_protocol.a"
  "libwavekey_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavekey_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
