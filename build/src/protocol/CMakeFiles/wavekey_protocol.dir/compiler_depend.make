# Empty compiler generated dependencies file for wavekey_protocol.
# This may be replaced when dependencies are built.
