file(REMOVE_RECURSE
  "libwavekey_protocol.a"
)
