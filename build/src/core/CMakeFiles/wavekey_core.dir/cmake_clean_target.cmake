file(REMOVE_RECURSE
  "libwavekey_core.a"
)
