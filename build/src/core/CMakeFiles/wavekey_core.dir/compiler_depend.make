# Empty compiler generated dependencies file for wavekey_core.
# This may be replaced when dependencies are built.
