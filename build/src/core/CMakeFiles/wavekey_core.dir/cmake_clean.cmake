file(REMOVE_RECURSE
  "CMakeFiles/wavekey_core.dir/dataset.cpp.o"
  "CMakeFiles/wavekey_core.dir/dataset.cpp.o.d"
  "CMakeFiles/wavekey_core.dir/encoders.cpp.o"
  "CMakeFiles/wavekey_core.dir/encoders.cpp.o.d"
  "CMakeFiles/wavekey_core.dir/key_seed.cpp.o"
  "CMakeFiles/wavekey_core.dir/key_seed.cpp.o.d"
  "CMakeFiles/wavekey_core.dir/model_store.cpp.o"
  "CMakeFiles/wavekey_core.dir/model_store.cpp.o.d"
  "CMakeFiles/wavekey_core.dir/pairing.cpp.o"
  "CMakeFiles/wavekey_core.dir/pairing.cpp.o.d"
  "CMakeFiles/wavekey_core.dir/seed_quantizer.cpp.o"
  "CMakeFiles/wavekey_core.dir/seed_quantizer.cpp.o.d"
  "CMakeFiles/wavekey_core.dir/system.cpp.o"
  "CMakeFiles/wavekey_core.dir/system.cpp.o.d"
  "libwavekey_core.a"
  "libwavekey_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavekey_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
