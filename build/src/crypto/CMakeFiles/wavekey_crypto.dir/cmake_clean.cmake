file(REMOVE_RECURSE
  "CMakeFiles/wavekey_crypto.dir/chacha20.cpp.o"
  "CMakeFiles/wavekey_crypto.dir/chacha20.cpp.o.d"
  "CMakeFiles/wavekey_crypto.dir/drbg.cpp.o"
  "CMakeFiles/wavekey_crypto.dir/drbg.cpp.o.d"
  "CMakeFiles/wavekey_crypto.dir/field25519.cpp.o"
  "CMakeFiles/wavekey_crypto.dir/field25519.cpp.o.d"
  "CMakeFiles/wavekey_crypto.dir/hmac.cpp.o"
  "CMakeFiles/wavekey_crypto.dir/hmac.cpp.o.d"
  "CMakeFiles/wavekey_crypto.dir/oblivious_transfer.cpp.o"
  "CMakeFiles/wavekey_crypto.dir/oblivious_transfer.cpp.o.d"
  "CMakeFiles/wavekey_crypto.dir/sha256.cpp.o"
  "CMakeFiles/wavekey_crypto.dir/sha256.cpp.o.d"
  "CMakeFiles/wavekey_crypto.dir/stream_cipher.cpp.o"
  "CMakeFiles/wavekey_crypto.dir/stream_cipher.cpp.o.d"
  "libwavekey_crypto.a"
  "libwavekey_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavekey_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
