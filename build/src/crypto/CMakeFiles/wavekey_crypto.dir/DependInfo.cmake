
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/chacha20.cpp" "src/crypto/CMakeFiles/wavekey_crypto.dir/chacha20.cpp.o" "gcc" "src/crypto/CMakeFiles/wavekey_crypto.dir/chacha20.cpp.o.d"
  "/root/repo/src/crypto/drbg.cpp" "src/crypto/CMakeFiles/wavekey_crypto.dir/drbg.cpp.o" "gcc" "src/crypto/CMakeFiles/wavekey_crypto.dir/drbg.cpp.o.d"
  "/root/repo/src/crypto/field25519.cpp" "src/crypto/CMakeFiles/wavekey_crypto.dir/field25519.cpp.o" "gcc" "src/crypto/CMakeFiles/wavekey_crypto.dir/field25519.cpp.o.d"
  "/root/repo/src/crypto/hmac.cpp" "src/crypto/CMakeFiles/wavekey_crypto.dir/hmac.cpp.o" "gcc" "src/crypto/CMakeFiles/wavekey_crypto.dir/hmac.cpp.o.d"
  "/root/repo/src/crypto/oblivious_transfer.cpp" "src/crypto/CMakeFiles/wavekey_crypto.dir/oblivious_transfer.cpp.o" "gcc" "src/crypto/CMakeFiles/wavekey_crypto.dir/oblivious_transfer.cpp.o.d"
  "/root/repo/src/crypto/sha256.cpp" "src/crypto/CMakeFiles/wavekey_crypto.dir/sha256.cpp.o" "gcc" "src/crypto/CMakeFiles/wavekey_crypto.dir/sha256.cpp.o.d"
  "/root/repo/src/crypto/stream_cipher.cpp" "src/crypto/CMakeFiles/wavekey_crypto.dir/stream_cipher.cpp.o" "gcc" "src/crypto/CMakeFiles/wavekey_crypto.dir/stream_cipher.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/wavekey_numeric.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
