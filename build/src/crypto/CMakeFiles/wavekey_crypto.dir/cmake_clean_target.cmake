file(REMOVE_RECURSE
  "libwavekey_crypto.a"
)
