# Empty dependencies file for wavekey_crypto.
# This may be replaced when dependencies are built.
