file(REMOVE_RECURSE
  "libwavekey_sim.a"
)
