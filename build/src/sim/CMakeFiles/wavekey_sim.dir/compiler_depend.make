# Empty compiler generated dependencies file for wavekey_sim.
# This may be replaced when dependencies are built.
