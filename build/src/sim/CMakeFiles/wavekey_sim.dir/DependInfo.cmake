
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/camera.cpp" "src/sim/CMakeFiles/wavekey_sim.dir/camera.cpp.o" "gcc" "src/sim/CMakeFiles/wavekey_sim.dir/camera.cpp.o.d"
  "/root/repo/src/sim/gesture.cpp" "src/sim/CMakeFiles/wavekey_sim.dir/gesture.cpp.o" "gcc" "src/sim/CMakeFiles/wavekey_sim.dir/gesture.cpp.o.d"
  "/root/repo/src/sim/imu_sensor.cpp" "src/sim/CMakeFiles/wavekey_sim.dir/imu_sensor.cpp.o" "gcc" "src/sim/CMakeFiles/wavekey_sim.dir/imu_sensor.cpp.o.d"
  "/root/repo/src/sim/rfid_channel.cpp" "src/sim/CMakeFiles/wavekey_sim.dir/rfid_channel.cpp.o" "gcc" "src/sim/CMakeFiles/wavekey_sim.dir/rfid_channel.cpp.o.d"
  "/root/repo/src/sim/scenario.cpp" "src/sim/CMakeFiles/wavekey_sim.dir/scenario.cpp.o" "gcc" "src/sim/CMakeFiles/wavekey_sim.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/numeric/CMakeFiles/wavekey_numeric.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/wavekey_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
