file(REMOVE_RECURSE
  "CMakeFiles/wavekey_sim.dir/camera.cpp.o"
  "CMakeFiles/wavekey_sim.dir/camera.cpp.o.d"
  "CMakeFiles/wavekey_sim.dir/gesture.cpp.o"
  "CMakeFiles/wavekey_sim.dir/gesture.cpp.o.d"
  "CMakeFiles/wavekey_sim.dir/imu_sensor.cpp.o"
  "CMakeFiles/wavekey_sim.dir/imu_sensor.cpp.o.d"
  "CMakeFiles/wavekey_sim.dir/rfid_channel.cpp.o"
  "CMakeFiles/wavekey_sim.dir/rfid_channel.cpp.o.d"
  "CMakeFiles/wavekey_sim.dir/scenario.cpp.o"
  "CMakeFiles/wavekey_sim.dir/scenario.cpp.o.d"
  "libwavekey_sim.a"
  "libwavekey_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wavekey_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
